#include "analysis/preprocess.hpp"

#include <map>
#include <unordered_map>

#include "support/error.hpp"

namespace ac::analysis {

using trace::Opcode;
using trace::OperandSlot;
using trace::PackedOperand;
using trace::PackedRecord;
using trace::SymbolPool;
using trace::TraceBuffer;
using trace::TraceRecord;

Partition partition_trace(const std::vector<TraceRecord>& records, const MclRegion& region) {
  Partition part;
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(records.size()); ++i) {
    const TraceRecord& r = records[static_cast<std::size_t>(i)];
    // Alloca records are hoisted to function entry by the compiler; their
    // line is the declaration point, not an executed loop statement (cf. the
    // paper's Fig. 6(c), where LLVM-Tracer reports line -1 for Alloca).
    if (r.opcode == Opcode::Alloca) continue;
    if (r.func == region.function && region.contains(r.line)) {
      if (part.first_b < 0) part.first_b = i;
      part.last_b = i;
    }
  }
  if (!part.has_loop()) {
    throw AnalysisError("main computation loop region never executes "
                        "(wrong function name or line range?)");
  }
  return part;
}

Partition partition_trace(const TraceBuffer& buf, const MclRegion& region) {
  Partition part;
  const std::uint32_t region_func = buf.pool().lookup(region.function);
  const auto& records = buf.records();
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(records.size()); ++i) {
    const PackedRecord& r = records[static_cast<std::size_t>(i)];
    if (r.opcode == Opcode::Alloca) continue;
    // Id equality matches the legacy string equality (npos == empty string).
    if (r.func == region_func && region.contains(r.line)) {
      if (part.first_b < 0) part.first_b = i;
      part.last_b = i;
    }
  }
  if (!part.has_loop()) {
    throw AnalysisError("main computation loop region never executes "
                        "(wrong function name or line range?)");
  }
  return part;
}

namespace {

/// The memory address a Load reads or a Store writes, or 0 for other records.
std::uint64_t access_address(const PackedRecord& r, const PackedOperand* ops) {
  const int want = r.opcode == Opcode::Load ? 1 : (r.opcode == Opcode::Store ? 2 : 0);
  if (want == 0) return 0;
  const PackedOperand* op = trace::find_input(r, ops, want);
  return op && op->is_addr() ? op->addr() : 0;
}

}  // namespace

struct MliCollector::Impl {
  MclRegion region;
  MliMode mode;

  // Name resolution. Batch mode binds the (complete, immutable) pool of the
  // buffer being replayed; streaming mode interns into its own pool as
  // records arrive.
  const SymbolPool* pool = nullptr;
  SymbolPool owned_pool;
  std::uint32_t region_func_id = SymbolPool::npos;

  // Streaming scratch: one packed record at a time, storage reused.
  std::vector<PackedRecord> scratch_rec;
  std::vector<PackedOperand> scratch_ops;

  PreprocessResult out;
  AddressMap amap;
  std::ptrdiff_t idx = -1;       // current record index
  std::ptrdiff_t first_b = -1;   // known as soon as the loop is entered
  std::ptrdiff_t last_b = -1;    // grows until the stream ends

  struct VarFlags {
    std::ptrdiff_t alloca_idx = -1;
    bool accessed_before_loop = false;
    std::ptrdiff_t first_access_in_loop_or_later = -1;
    std::uint64_t base = 0;  // last bound base address (stable for host/globals)
  };
  std::vector<VarFlags> flags;

  AllocaSiteCache alloca_ids;

  // PaperNameMatch state: call-depth tracking needs one record of lookahead
  // to recognize "a Call instruction followed by its function body".
  bool pending_call = false;
  bool pending_has_callee = false;
  std::uint32_t pending_callee = SymbolPool::npos;
  int call_depth = 0;
  int loop_entry_depth = -1;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::ptrdiff_t> set_a;  // -> first idx
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::ptrdiff_t> set_b;
  std::vector<std::uint32_t> var_name_id;  // canonical var id -> pool id of its name

  Impl(const MclRegion& r, MliMode m) : region(r), mode(m) {}

  void bind_streaming() {
    pool = &owned_pool;
    region_func_id = owned_pool.intern(region.function);
  }
  void bind_buffer(const TraceBuffer& buf) {
    pool = &buf.pool();
    region_func_id = pool->lookup(region.function);
  }

  VarFlags& flags_of(int id) {
    if (static_cast<std::size_t>(id) >= flags.size()) flags.resize(static_cast<std::size_t>(id) + 1);
    return flags[static_cast<std::size_t>(id)];
  }

  std::uint32_t name_id_of_var(int id) {
    if (static_cast<std::size_t>(id) >= var_name_id.size()) {
      var_name_id.resize(static_cast<std::size_t>(id) + 1, SymbolPool::npos);
    }
    return var_name_id[static_cast<std::size_t>(id)];
  }

  int canonical_var(std::uint32_t func, std::uint32_t name, int line, std::uint64_t bytes) {
    const int id = alloca_ids.canonical(out.vars, *pool, func, name, line, bytes);
    if (static_cast<std::size_t>(id) >= var_name_id.size()) {
      var_name_id.resize(static_cast<std::size_t>(id) + 1, SymbolPool::npos);
    }
    var_name_id[static_cast<std::size_t>(id)] = name;
    return id;
  }

  void add(const TraceRecord& rec) {
    scratch_rec.clear();
    scratch_ops.clear();
    trace::pack_record(rec, owned_pool, scratch_rec, scratch_ops);
    add_packed(scratch_rec[0], scratch_ops.data());
  }

  void add_packed(const PackedRecord& rec, const PackedOperand* ops) {
    if (pending_call) {
      // Ids compare like the legacy strings did (empty name == npos == empty
      // func), so "a Call followed by its function body" is the same test.
      if (pending_has_callee && rec.func == pending_callee) ++call_depth;
      pending_call = false;
    }
    ++idx;
    ++out.records_scanned;

    const bool in_region = rec.opcode != Opcode::Alloca && rec.func == region_func_id &&
                           region.contains(rec.line);
    if (in_region) {
      if (first_b < 0) {
        first_b = idx;
        loop_entry_depth = call_depth;
      }
      last_b = idx;
    }

    if (rec.opcode == Opcode::Call) {
      pending_call = true;
      const PackedOperand* callee = trace::find_operand(rec, ops, OperandSlot::Callee);
      pending_has_callee = callee != nullptr;
      pending_callee = callee ? callee->name : SymbolPool::npos;
    }
    if (rec.opcode == Opcode::Ret) --call_depth;

    if (rec.opcode == Opcode::Alloca) {
      const PackedOperand* result = trace::find_operand(rec, ops, OperandSlot::Result);
      const PackedOperand* size = trace::find_input(rec, ops, 1);
      if (!result || !size || !result->is_addr()) {
        throw AnalysisError("malformed Alloca record");
      }
      const auto bytes = static_cast<std::uint64_t>(size->as_i64());
      const int id = canonical_var(rec.func, result->name, rec.line, bytes);
      amap.bind(result->addr(), bytes, id);
      VarFlags& f = flags_of(id);
      if (f.alloca_idx < 0) f.alloca_idx = idx;
      f.base = result->addr();
      return;
    }

    const std::uint64_t addr = access_address(rec, ops);
    if (addr == 0) return;
    const auto hit = amap.resolve(addr);
    if (!hit) return;

    VarFlags& f = flags_of(hit->var);
    if (first_b < 0) {
      f.accessed_before_loop = true;
    } else if (f.first_access_in_loop_or_later < 0) {
      f.first_access_in_loop_or_later = idx;
    }

    if (mode == MliMode::PaperNameMatch) {
      const std::uint32_t name_id = name_id_of_var(hit->var);
      const std::uint64_t base = addr - static_cast<std::uint64_t>(hit->elem) * 8;
      if (first_b < 0) {
        set_a.emplace(std::make_pair(name_id, base), idx);
      } else if (call_depth <= loop_entry_depth) {
        // Bypass function-call intervals: only host-level accesses collected.
        set_b.emplace(std::make_pair(name_id, base), idx);
      }
    }
  }

  PreprocessResult finish() {
    if (first_b < 0) {
      throw AnalysisError("main computation loop region never executes "
                          "(wrong function name or line range?)");
    }
    out.partition.first_b = first_b;
    out.partition.last_b = last_b;

    out.is_mli.assign(out.vars.size(), 0);
    for (std::size_t id = 0; id < out.vars.size(); ++id) {
      if (id >= flags.size()) continue;
      const VarDef& def = out.vars.def(static_cast<int>(id));
      const VarFlags& f = flags[id];
      const bool host_scope = def.is_global() || def.func == region.function;
      const bool defined_before_loop = host_scope && f.alloca_idx >= 0 && f.alloca_idx < first_b;
      const bool accessed_in_loop =
          f.first_access_in_loop_or_later >= 0 && f.first_access_in_loop_or_later <= last_b;

      bool mli = false;
      if (mode == MliMode::AddressResolved) {
        mli = defined_before_loop && f.accessed_before_loop && accessed_in_loop;
      } else {
        // Name+address matching between the collected sets, restricted to
        // host-scope/global storage introduced before the loop; Part C
        // collections are filtered out by the loop's end index.
        const auto key = std::make_pair(name_id_of_var(static_cast<int>(id)), f.base);
        const auto a = set_a.find(key);
        const auto b = set_b.find(key);
        mli = defined_before_loop && a != set_a.end() && b != set_b.end() &&
              b->second <= last_b;
      }
      if (mli) {
        out.is_mli[id] = 1;
        out.mli.push_back(MliVar{static_cast<int>(id), def.name, def.decl_line, def.bytes});
      }
    }
    return std::move(out);
  }
};

MliCollector::MliCollector(const MclRegion& region, MliMode mode)
    : impl_(new Impl(region, mode)) {
  impl_->bind_streaming();
}

MliCollector::~MliCollector() = default;

void MliCollector::add(const trace::TraceRecord& rec) { impl_->add(rec); }

PreprocessResult MliCollector::finish() { return impl_->finish(); }

PreprocessResult preprocess(const TraceBuffer& buf, const MclRegion& region, MliMode mode) {
  MliCollector::Impl impl(region, mode);
  impl.bind_buffer(buf);
  const auto& records = buf.records();
  const PackedOperand* ops = buf.operands().data();
  for (const PackedRecord& rec : records) impl.add_packed(rec, ops + rec.op_offset);
  return impl.finish();
}

PreprocessResult preprocess(const std::vector<TraceRecord>& records, const MclRegion& region,
                            MliMode mode) {
  MliCollector collector(region, mode);
  for (const TraceRecord& rec : records) collector.add(rec);
  return collector.finish();
}

}  // namespace ac::analysis
