#include "analysis/region.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace ac::analysis {

MclRegion find_mcl_region(const std::string& source, std::string function) {
  int begin = -1;
  int end = -1;
  int line = 1;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    const std::string_view text =
        std::string_view(source).substr(pos, nl == std::string::npos ? source.size() - pos : nl - pos);
    if (text.find("//@mcl-begin") != std::string_view::npos) begin = line + 1;
    if (text.find("//@mcl-end") != std::string_view::npos) end = line - 1;
    if (nl == std::string::npos) break;
    pos = nl + 1;
    ++line;
  }
  if (begin < 0 || end < 0) throw AnalysisError("missing //@mcl-begin or //@mcl-end marker");
  if (end < begin) throw AnalysisError("inverted MCL markers");
  MclRegion region;
  region.function = std::move(function);
  region.begin_line = begin;
  region.end_line = end;
  return region;
}

}  // namespace ac::analysis
