#include "analysis/vartable.hpp"

#include "support/strings.hpp"

namespace ac::analysis {

int VarTable::canonical(const std::string& func, const std::string& name, int decl_line,
                        std::uint64_t bytes) {
  std::string key = func;
  key.push_back('\0');
  key += name;
  key.push_back('\0');
  key += strf("%d", decl_line);
  auto [it, inserted] = index_.emplace(std::move(key), static_cast<int>(defs_.size()));
  if (inserted) {
    VarDef def;
    def.id = it->second;
    def.name = name;
    def.func = func;
    def.decl_line = decl_line;
    def.bytes = bytes;
    defs_.push_back(std::move(def));
  } else if (bytes > 0) {
    defs_[static_cast<std::size_t>(it->second)].bytes = bytes;
  }
  return it->second;
}

void AddressMap::bind(std::uint64_t base, std::uint64_t bytes, int var_id) {
  const std::uint64_t end = base + bytes;
  // Evict intervals overlapping [base, end).
  auto it = by_base_.upper_bound(base);
  if (it != by_base_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.bytes > base) it = prev;
  }
  while (it != by_base_.end() && it->first < end) it = by_base_.erase(it);
  by_base_.emplace(base, Interval{bytes, var_id});
}

std::optional<AddressMap::Hit> AddressMap::resolve(std::uint64_t addr) const {
  auto it = by_base_.upper_bound(addr);
  if (it == by_base_.begin()) return std::nullopt;
  --it;
  if (addr >= it->first + it->second.bytes) return std::nullopt;
  Hit hit;
  hit.var = it->second.var;
  hit.elem = static_cast<std::int64_t>((addr - it->first) / 8);
  return hit;
}

}  // namespace ac::analysis
