#include "analysis/vartable.hpp"

#include "support/strings.hpp"

namespace ac::analysis {

int VarTable::canonical(std::string_view func, std::string_view name, int decl_line,
                        std::uint64_t bytes) {
  std::string key(func);
  key.push_back('\0');
  key += name;
  key.push_back('\0');
  key += strf("%d", decl_line);
  auto [it, inserted] = index_.emplace(std::move(key), static_cast<int>(defs_.size()));
  if (inserted) {
    VarDef def;
    def.id = it->second;
    def.name = std::string(name);
    def.func = std::string(func);
    def.decl_line = decl_line;
    def.bytes = bytes;
    defs_.push_back(std::move(def));
  } else if (bytes > 0) {
    defs_[static_cast<std::size_t>(it->second)].bytes = bytes;
  }
  return it->second;
}

int AllocaSiteCache::canonical(VarTable& vars, const trace::SymbolPool& pool,
                               std::uint32_t func, std::uint32_t name, int decl_line,
                               std::uint64_t bytes) {
  auto& entries = sites_[(static_cast<std::uint64_t>(func) << 32) | name];
  for (const auto& [known_line, id] : entries) {
    if (known_line == decl_line) {
      vars.update_bytes(id, bytes);
      return id;
    }
  }
  const int id = vars.canonical(pool.view(func), pool.view(name), decl_line, bytes);
  entries.emplace_back(decl_line, id);
  return id;
}

void AddressMap::bind(std::uint64_t base, std::uint64_t bytes, int var_id) {
  const std::uint64_t end = base + bytes;
  // Evict intervals overlapping [base, end).
  auto it = by_base_.upper_bound(base);
  if (it != by_base_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.bytes > base) it = prev;
  }
  while (it != by_base_.end() && it->first < end) it = by_base_.erase(it);
  by_base_.emplace(base, Interval{bytes, var_id});
}

std::optional<AddressMap::Hit> AddressMap::resolve(std::uint64_t addr) const {
  auto it = by_base_.upper_bound(addr);
  if (it == by_base_.begin()) return std::nullopt;
  --it;
  if (addr >= it->first + it->second.bytes) return std::nullopt;
  Hit hit;
  hit.var = it->second.var;
  hit.elem = static_cast<std::int64_t>((addr - it->first) / 8);
  return hit;
}

}  // namespace ac::analysis
