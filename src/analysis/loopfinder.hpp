// Main-loop suggestion (extension; paper §VII "Select main loop"): the 14
// benchmark loops were found manually in the paper — "the most
// computationally intensive and longest running loops". This module ranks
// candidate loops straight from the trace so a user without source knowledge
// can pick the MCL: every (function, line) hosting conditional branches is a
// loop header; candidates are ranked by the dynamic-instruction span they
// enclose (computational weight), with their iteration counts and an
// estimated body line range.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/buffer.hpp"
#include "trace/record.hpp"

namespace ac::analysis {

struct LoopCandidate {
  std::string function;
  int header_line = 0;
  int end_line = 0;          // estimated last body line (for --begin/--end)
  int evaluations = 0;       // conditional-branch evaluations at the header
  std::uint64_t span = 0;    // dynamic instructions between first/last evaluation
  double coverage = 0;       // span / total trace length

  bool operator==(const LoopCandidate&) const = default;
};

/// Rank loop candidates, heaviest first. `top_n` == 0 returns all.
std::vector<LoopCandidate> suggest_loops(const std::vector<trace::TraceRecord>& records,
                                         std::size_t top_n = 5);

/// Same scan over the interned buffer (no TraceRecord materialization).
std::vector<LoopCandidate> suggest_loops(const trace::TraceBuffer& buf, std::size_t top_n = 5);

/// Render a human-readable suggestion list (used by `autocheck --suggest`).
std::string render_suggestions(const std::vector<LoopCandidate>& candidates);

}  // namespace ac::analysis
