// Identification of critical variables (paper §IV-C, Fig. 7).
//
// Per MLI variable, on its element-granular R/W event stream:
//  * a read that consumes a value produced in an *earlier loop iteration* is
//    a stale consumption — the variable cannot be reconstructed by re-running
//    initialization, so it must be checkpointed. The consumption is labelled
//    RAPO when the current iteration had already partially overwritten the
//    array before the read (and the read element is not refreshed by this
//    iteration at all); otherwise WAR.
//  * values produced only by initialization (Part A) are reconstructed by a
//    restart's re-execution of init, so read-only inputs are not critical.
//  * written inside the loop and read after it, with no stale consumption:
//    Outcome.
//  * variables read by the loop-header condition and written inside the loop
//    (for-loop induction via their self-dependent header store, or while-loop
//    control flags): Index — which takes precedence over the dataflow labels,
//    as in the paper's treatment of `it`.
#pragma once

#include <string>
#include <vector>

#include "analysis/depanalysis.hpp"

namespace ac::analysis {

enum class DepType : std::uint8_t { WAR, Outcome, RAPO, Index, NotCritical };

const char* dep_type_name(DepType t);

struct CriticalVar {
  int var_id = -1;
  std::string name;
  DepType type = DepType::NotCritical;
  int decl_line = 0;
  std::uint64_t bytes = 0;
  /// Witness for the verdict, e.g. "value written in iteration 1 is consumed
  /// at line 22 in iteration 2". Empty for NotCritical.
  std::string reason;

  bool operator==(const CriticalVar&) const = default;
};

struct ClassifyResult {
  /// Variables to checkpoint (WAR/RAPO/Outcome/Index), MLI discovery order
  /// with Index-only variables appended.
  std::vector<CriticalVar> critical;
  /// Every MLI variable with its verdict (including NotCritical).
  std::vector<CriticalVar> all_mli;
};

ClassifyResult classify(const DepResult& dep, const PreprocessResult& pre);

/// Parallel sharded classification: the per-variable event streams are
/// independent (every map the scan keeps is keyed by variable), so the event
/// stream is partitioned per variable into `threads` shards, the shards are
/// scanned concurrently, and the per-variable verdicts are merged back in MLI
/// discovery order. Bit-identical to classify() by construction — same scan
/// per variable, same deterministic assembly. `threads` <= 1 is the
/// sequential path.
///
/// Shards are assigned by event-count balance (LPT over per-variable event
/// totals, see lpt_shard_assignment), and the per-variable event extraction
/// itself fans out onto the same worker pool: each worker sweeps the shared
/// event array once and keeps its own shard's variables, so a skewed app
/// (one hot array) no longer serializes both the extraction and the scan.
ClassifyResult classify_sharded(const DepResult& dep, const PreprocessResult& pre, int threads);

/// Pipelined producer/consumer variant of classify_sharded — what the Session
/// runs. Instead of every worker sweeping the whole event array (N full
/// sweeps, then a barrier before scanning), extraction workers sweep disjoint
/// event chunks once, routing each chunk's events to per-shard mailboxes, and
/// the per-shard scanners consume slices in chunk order as they arrive —
/// pass-1 accumulation overlaps extraction; no barrier between the stages.
/// Verdicts are bit-identical to classify() and classify_sharded() by
/// construction (same per-variable two-pass scan over the same in-order
/// stream) and pinned by tests. `threads` <= 1 is the sequential path.
ClassifyResult classify_pipelined(const DepResult& dep, const PreprocessResult& pre, int threads);

/// Longest-processing-time assignment of variables to shards: variables
/// sorted by descending event count (ties by ascending var id) each go to the
/// currently lightest shard (ties to the lowest shard index) — deterministic,
/// and within 4/3 of the optimal makespan. `loads[i]` of the returned
/// assignment is the shard index of `counts[i].first`. Exposed for tests and
/// benchmarks.
///   counts: (var id, event count) pairs; nshards >= 1.
std::vector<int> lpt_shard_assignment(const std::vector<std::pair<int, std::uint64_t>>& counts,
                                      int nshards);

}  // namespace ac::analysis
