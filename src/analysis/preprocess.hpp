// Pre-processing module (paper §IV-A and Fig. 3): partition the trace around
// the main computation loop and identify the Main-Loop-Input (MLI) variables.
//
// The scan runs natively on the interned packed representation
// (trace/buffer.hpp): one implementation serves the batch path (a replay of a
// TraceBuffer, zero per-record conversion) and the streaming path (legacy
// TraceRecords packed one at a time into a scratch buffer) — so batch and
// streaming results are identical by construction.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "analysis/region.hpp"
#include "analysis/vartable.hpp"
#include "trace/buffer.hpp"
#include "trace/record.hpp"

namespace ac::analysis {

enum class Part : std::uint8_t { A, B, C };

/// Record-index boundaries of the main computation loop (Fig. 4 regions):
/// Part A = [0, first_b), Part B = [first_b, last_b], Part C = (last_b, end).
struct Partition {
  std::ptrdiff_t first_b = -1;
  std::ptrdiff_t last_b = -1;

  bool has_loop() const { return first_b >= 0; }
  Part part_of(std::ptrdiff_t idx) const {
    if (!has_loop() || idx < first_b) return Part::A;
    return idx <= last_b ? Part::B : Part::C;
  }
};

/// Locate the loop: the first/last records executed at the host function's
/// MCL source lines. Throws ac::AnalysisError when the region never executes.
Partition partition_trace(const std::vector<trace::TraceRecord>& records, const MclRegion& region);
Partition partition_trace(const trace::TraceBuffer& buf, const MclRegion& region);

enum class MliMode {
  /// Default: address-resolved matching — a variable is MLI iff its storage
  /// belongs to the host function (or is a global), and it is accessed both
  /// before and inside the loop (accesses through callees resolve to the
  /// owning variable by address). This is the paper's Challenge-1/2 handling
  /// taken to its conclusion.
  AddressResolved,
  /// The paper's literal scheme: collect (name, address) pairs of variables
  /// touched before the loop and — bypassing the bodies of functions called
  /// from the loop — inside it, then match. Exhibits the FT-global
  /// limitation of §V-B, which the tests demonstrate.
  PaperNameMatch,
};

struct MliVar {
  int var_id = -1;
  std::string name;
  int decl_line = 0;
  std::uint64_t bytes = 0;
};

struct PreprocessResult {
  Partition partition;
  VarTable vars;               // canonical registry for the whole trace
  std::vector<MliVar> mli;     // discovery order
  std::vector<char> is_mli;    // indexed by canonical var id
  std::uint64_t records_scanned = 0;
};

/// Batch pre-processing over the interned buffer (the fast path).
PreprocessResult preprocess(const trace::TraceBuffer& buf, const MclRegion& region,
                            MliMode mode = MliMode::AddressResolved);

/// Legacy batch entry point over owning records (wraps the streaming class).
PreprocessResult preprocess(const std::vector<trace::TraceRecord>& records,
                            const MclRegion& region, MliMode mode = MliMode::AddressResolved);

/// Incremental pre-processing: feed records one at a time (e.g. directly from
/// an instrumented execution, the paper's stated future work) and call
/// finish() once. Each record is packed into a private scratch buffer (names
/// interned into the collector's own pool) and handed to the same scan the
/// batch path runs, so batch and streaming results are identical by
/// construction.
class MliCollector {
 public:
  explicit MliCollector(const MclRegion& region, MliMode mode = MliMode::AddressResolved);
  ~MliCollector();
  MliCollector(const MliCollector&) = delete;
  MliCollector& operator=(const MliCollector&) = delete;

  void add(const trace::TraceRecord& rec);
  /// Throws ac::AnalysisError when the region never executed.
  PreprocessResult finish();

  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace ac::analysis
