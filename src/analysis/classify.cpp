#include "analysis/classify.hpp"

#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <tuple>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace ac::analysis {

const char* dep_type_name(DepType t) {
  switch (t) {
    case DepType::WAR: return "WAR";
    case DepType::Outcome: return "Outcome";
    case DepType::RAPO: return "RAPO";
    case DepType::Index: return "Index";
    case DepType::NotCritical: return "-";
  }
  return "?";
}

namespace {

struct VarVerdict {
  bool war = false;
  bool rapo = false;
  bool outcome = false;
  std::string war_reason;
  std::string rapo_reason;
  std::string outcome_reason;
};

/// Pass-1 state: per variable, which elements each iteration writes (Part B
/// only), so the RAPO test can ask "is this element refreshed by the current
/// iteration at all?" without caring about intra-iteration ordering. Built
/// incrementally so the pipelined path can fold events in as extraction
/// delivers them.
struct WriteSets {
  std::unordered_map<int, std::map<int, std::set<std::int64_t>>> written_by_iter;
  std::unordered_set<int> written_in_b;

  void add(const AccessEvent& ev) {
    if (ev.part == Part::B && ev.is_write) {
      written_by_iter[ev.var][ev.iteration].insert(ev.elem);
      written_in_b.insert(ev.var);
    }
  }
};

/// Pass 2: the stale-consumption scan over a variable-complete subset of the
/// event stream, with `ws` built from exactly the same events. Every piece of
/// state is keyed by variable, so running it over any variable-complete
/// subset (all events of each contained variable, in execution order) yields
/// exactly the verdicts the full-stream scan assigns those variables — the
/// invariant both parallel paths rely on.
std::unordered_map<int, VarVerdict> scan_pass2(const AccessEvent* events, std::size_t count,
                                               WriteSets& ws) {
  auto& written_by_iter = ws.written_by_iter;
  auto& written_in_b = ws.written_in_b;
  std::unordered_map<int, VarVerdict> verdicts;
  std::unordered_map<int, std::unordered_map<std::int64_t, int>> last_write_iter;  // Part B writes
  std::unordered_map<int, int> cur_iter_of_var;
  std::unordered_map<int, int> writes_so_far;  // within the variable's current iteration

  for (std::size_t i = 0; i < count; ++i) {
    const AccessEvent& ev = events[i];
    VarVerdict& v = verdicts[ev.var];

    if (ev.part == Part::C) {
      if (!ev.is_write && written_in_b.count(ev.var) && !v.outcome) {
        v.outcome = true;
        v.outcome_reason =
            strf("written inside the loop, consumed after it at line %d", ev.line);
      }
      continue;
    }
    if (ev.part != Part::B) continue;

    auto [it, inserted] = cur_iter_of_var.emplace(ev.var, ev.iteration);
    if (!inserted && it->second != ev.iteration) {
      it->second = ev.iteration;
      writes_so_far[ev.var] = 0;
    }

    if (ev.is_write) {
      last_write_iter[ev.var][ev.elem] = ev.iteration;
      ++writes_so_far[ev.var];
      continue;
    }

    // Read: stale iff its element's last write happened in an earlier
    // iteration of the loop (a Part-A/init value is reconstructible, not stale).
    auto& lw = last_write_iter[ev.var];
    auto w = lw.find(ev.elem);
    if (w == lw.end() || w->second >= ev.iteration) continue;

    const auto& this_iter_writes = written_by_iter[ev.var][ev.iteration];
    const bool elem_refreshed = this_iter_writes.count(ev.elem) > 0;
    const bool partially_overwritten = writes_so_far[ev.var] > 0;
    if (partially_overwritten && !elem_refreshed) {
      if (!v.rapo) {
        v.rapo = true;
        v.rapo_reason = strf(
            "element %lld written in iteration %d is read at line %d in iteration %d, "
            "after this iteration partially overwrote the array",
            static_cast<long long>(ev.elem), w->second, ev.line, ev.iteration);
      }
    } else if (!v.war) {
      v.war = true;
      v.war_reason =
          strf("value written in iteration %d is consumed at line %d in iteration %d "
               "before being overwritten",
               w->second, ev.line, ev.iteration);
    }
  }
  return verdicts;
}

/// The two-pass dataflow scan over a (sub)stream held in one contiguous span.
std::unordered_map<int, VarVerdict> scan_events(const AccessEvent* events, std::size_t count) {
  WriteSets ws;
  for (std::size_t i = 0; i < count; ++i) ws.add(events[i]);
  return scan_pass2(events, count, ws);
}

/// Incremental per-shard scanner for the pipelined path: extraction delivers
/// event slices in execution order; pass-1 state folds in immediately
/// (overlapping with extraction still running), pass 2 runs at finish() over
/// the accumulated stream — the same two passes scan_events runs, so verdicts
/// are identical by construction.
class ShardScanner {
 public:
  void add(const AccessEvent* events, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) ws_.add(events[i]);
    events_.insert(events_.end(), events, events + count);
  }
  std::unordered_map<int, VarVerdict> finish() {
    return scan_pass2(events_.data(), events_.size(), ws_);
  }

 private:
  WriteSets ws_;
  std::vector<AccessEvent> events_;
};

/// Deterministic assembly of the final verdict list from the per-variable
/// scan results: MLI discovery order with Index-only variables appended.
ClassifyResult assemble(const std::unordered_map<int, VarVerdict>& verdicts,
                        const DepResult& dep, const PreprocessResult& pre) {
  // Index variables: read by the header condition and written inside the loop.
  std::set<int> index_vars;
  for (int var : dep.induction.cond_read) {
    const auto& w = dep.induction.written_in_b;
    if (static_cast<std::size_t>(var) < w.size() && w[static_cast<std::size_t>(var)]) {
      index_vars.insert(var);
    }
  }

  auto type_of = [&](int var_id) -> std::pair<DepType, std::string> {
    if (index_vars.count(var_id)) {
      const bool self = dep.induction.self_rmw.count(var_id) > 0;
      return {DepType::Index, self ? "loop induction variable (self-updated at the header)"
                                   : "read by the loop condition and written inside the loop"};
    }
    auto it = verdicts.find(var_id);
    if (it == verdicts.end()) return {DepType::NotCritical, ""};
    if (it->second.rapo) return {DepType::RAPO, it->second.rapo_reason};
    if (it->second.war) return {DepType::WAR, it->second.war_reason};
    if (it->second.outcome) return {DepType::Outcome, it->second.outcome_reason};
    return {DepType::NotCritical, ""};
  };

  ClassifyResult out;
  std::set<int> reported;
  for (const MliVar& m : pre.mli) {
    CriticalVar cv;
    cv.var_id = m.var_id;
    cv.name = m.name;
    cv.decl_line = m.decl_line;
    cv.bytes = m.bytes;
    std::tie(cv.type, cv.reason) = type_of(m.var_id);
    out.all_mli.push_back(cv);
    if (cv.type != DepType::NotCritical) {
      out.critical.push_back(cv);
      reported.insert(m.var_id);
    }
  }
  for (int var : index_vars) {
    if (reported.count(var)) continue;
    const VarDef& def = pre.vars.def(var);
    CriticalVar cv;
    cv.var_id = var;
    cv.name = def.name;
    cv.decl_line = def.decl_line;
    cv.bytes = def.bytes;
    std::tie(cv.type, cv.reason) = type_of(var);
    out.critical.push_back(cv);
  }
  return out;
}

/// Events delivered to a shard scanner (the serial scan counts as one shard).
/// Summed across shards this equals the stream's event count exactly — the
/// invariant the telemetry tests pin against ground truth.
void note_shard_events(std::size_t n) {
  static auto& c = telemetry::metrics().counter("classify.shard_events");
  c.add(n);
}

}  // namespace

ClassifyResult classify(const DepResult& dep, const PreprocessResult& pre) {
  AC_SPAN("classify.scan");
  note_shard_events(dep.events.size());
  return assemble(scan_events(dep.events.data(), dep.events.size()), dep, pre);
}

std::vector<int> lpt_shard_assignment(const std::vector<std::pair<int, std::uint64_t>>& counts,
                                      int nshards) {
  std::vector<int> assignment(counts.size(), 0);
  if (nshards <= 1) return assignment;

  // Sort by descending event count, ties by ascending var id — deterministic
  // regardless of the order counts were gathered in.
  std::vector<std::size_t> order(counts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (counts[a].second != counts[b].second) return counts[a].second > counts[b].second;
    return counts[a].first < counts[b].first;
  });

  std::vector<std::uint64_t> load(static_cast<std::size_t>(nshards), 0);
  for (const std::size_t i : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < load.size(); ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    assignment[i] = static_cast<int>(lightest);
    load[lightest] += counts[i].second;
  }
  return assignment;
}

namespace {

/// Flat var -> shard table from the LPT assignment over per-variable event
/// totals (the skewed apps put nearly every event on one hot array, so
/// `var % threads` used to hand one worker the whole stream). Var ids are
/// dense small ints, so the counting and the table are flat arrays — workers
/// index, they don't hash. -1 for vars with no events.
std::vector<int> shard_of_vars(const std::vector<AccessEvent>& events, int nshards) {
  std::size_t max_var = 0;
  for (const AccessEvent& ev : events) {
    max_var = std::max(max_var, static_cast<std::size_t>(ev.var));
  }
  std::vector<std::uint64_t> totals(max_var + 1, 0);
  for (const AccessEvent& ev : events) ++totals[static_cast<std::size_t>(ev.var)];
  std::vector<std::pair<int, std::uint64_t>> counts;
  for (std::size_t var = 0; var <= max_var; ++var) {
    if (totals[var]) counts.emplace_back(static_cast<int>(var), totals[var]);
  }
  const std::vector<int> assignment = lpt_shard_assignment(counts, nshards);
  std::vector<int> shard_of(max_var + 1, -1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    shard_of[static_cast<std::size_t>(counts[i].first)] = assignment[i];
  }
  return shard_of;
}

/// The shared thread-count clamp: more shards than MLI variables only
/// produces empty shards, and an unbounded user-supplied count must not
/// translate into thousands of threads.
int clamp_threads(int threads, const PreprocessResult& pre) {
  return std::min({threads, 256, std::max<int>(1, static_cast<int>(pre.mli.size()))});
}

}  // namespace

ClassifyResult classify_sharded(const DepResult& dep, const PreprocessResult& pre, int threads) {
  threads = clamp_threads(threads, pre);
  if (threads <= 1 || dep.events.empty()) return classify(dep, pre);

  const std::vector<int> shard_of = shard_of_vars(dep.events, threads);
  const std::size_t nshards = static_cast<std::size_t>(threads);
  std::vector<std::vector<AccessEvent>> shards(nshards);
  std::vector<std::unordered_map<int, VarVerdict>> partial(nshards);
  FailState fail;
  {
    // WorkerGroup joins whatever got started even when a later pthread_create
    // fails, and traps worker exceptions into the FailState — a bad_alloc in
    // a shard used to escape the thread and terminate the process.
    WorkerGroup pool(fail);
    // The per-variable event extraction fans out onto the same pool (the
    // ROADMAP's "parallelize dep-analysis" follow-up: the replay is
    // sequential by nature, but the extraction is a data-parallel sweep):
    // every worker scans the shared event array once, keeping the events of
    // its own shard's variables in execution order, then scans its shard.
    for (std::size_t s = 0; s < nshards; ++s) {
      pool.spawn([&, s] {
        if (fail.cancelled()) return;
        std::vector<AccessEvent>& mine = shards[s];
        {
          AC_SPAN("classify.extract");
          for (const AccessEvent& ev : dep.events) {
            if (static_cast<std::size_t>(shard_of[static_cast<std::size_t>(ev.var)]) == s) {
              mine.push_back(ev);
            }
          }
        }
        AC_SPAN("classify.scan_shard");
        note_shard_events(mine.size());
        partial[s] = scan_events(mine.data(), mine.size());
      });
    }
  }
  fail.rethrow_if_failed();

  // Shards own disjoint variable sets, so the merge is a plain union; the
  // deterministic ordering comes from assemble(), not from merge order.
  std::unordered_map<int, VarVerdict> verdicts;
  for (auto& p : partial) {
    for (auto& [var, v] : p) verdicts.emplace(var, std::move(v));
  }
  return assemble(verdicts, dep, pre);
}

ClassifyResult classify_pipelined(const DepResult& dep, const PreprocessResult& pre,
                                  int threads) {
  threads = clamp_threads(threads, pre);
  if (threads <= 1 || dep.events.empty()) return classify(dep, pre);

  // Split the caller's budget between the two stages (extractors + scanners
  // == threads, never 2x it): extraction is one cheap routing sweep, the
  // scans are the heavy stage, so a quarter of the budget routes and the
  // rest scans.
  const std::size_t nextract = std::max<std::size_t>(1, static_cast<std::size_t>(threads) / 4);
  const std::size_t nshards =
      std::max<std::size_t>(1, static_cast<std::size_t>(threads) - nextract);

  const std::vector<int> shard_of = shard_of_vars(dep.events, static_cast<int>(nshards));
  const std::size_t nevents = dep.events.size();
  const std::size_t chunk = std::max<std::size_t>(std::size_t{4096},
                                                  nevents / (nshards * 8) + 1);
  const std::size_t nchunks = (nevents + chunk - 1) / chunk;

  // Per-shard mailbox: extraction workers deliver the shard's slice of each
  // event chunk (possibly empty) as the chunk is swept; the shard's scanner
  // consumes slices strictly in chunk order, preserving execution order.
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::vector<AccessEvent>> slices;
    std::vector<char> ready;
  };
  std::vector<Mailbox> boxes(nshards);
  for (auto& b : boxes) {
    b.slices.resize(nchunks);
    b.ready.assign(nchunks, 0);
  }

  std::vector<std::unordered_map<int, VarVerdict>> partial(nshards);

  // Both stages share one FailState: a failure anywhere cancels extraction
  // (run_chunks stops handing out chunks) and every scanner (mailbox waits
  // also wake on the cancellation flag), and exactly one exception — with its
  // original type and message — survives to the rethrow below. The old
  // mailboxes stashed e.what() in a string and rethrew everything as
  // AnalysisError, so a worker bad_alloc came back relabelled.
  FailState fail;
  {
    // Scanners fold slices into the incremental two-pass scan as they
    // arrive — pass-1 accumulation overlaps with extraction still sweeping
    // later chunks. WorkerGroup traps scanner exceptions into `fail`.
    WorkerGroup scanners(fail);
    for (std::size_t s = 0; s < nshards; ++s) {
      scanners.spawn([&, s] {
        // The span covers mailbox waits too, so scanner stalls (extraction
        // backpressure) are visible as long scan_shard spans in the profile.
        AC_SPAN("classify.scan_shard");
        static auto& depth = telemetry::metrics().gauge("classify.mailbox_depth");
        ShardScanner scan;
        Mailbox& box = boxes[s];
        std::size_t events_seen = 0;
        for (std::size_t c = 0; c < nchunks; ++c) {
          std::vector<AccessEvent> slice;
          {
            std::unique_lock<std::mutex> lock(box.mu);
            box.cv.wait(lock, [&] { return box.ready[c] != 0 || fail.cancelled(); });
            if (fail.cancelled()) return;  // hole in the mailbox: region aborted
            slice = std::move(box.slices[c]);
          }
          depth.add(-1);
          events_seen += slice.size();
          scan.add(slice.data(), slice.size());
        }
        note_shard_events(events_seen);
        partial[s] = scan.finish();
      });
    }

    // Extraction: the executor's workers claim event chunks, sweep each once
    // routing events to their variables' shards, and deliver the slices. One
    // sweep of the event array total, not one per shard — and no barrier
    // before scanning starts. The shared FailState means a failed chunk stops
    // extraction without throwing here (scanners still need the wakeup).
    ExecutorOptions eopts;
    eopts.threads = static_cast<int>(nextract);
    run_chunks(
        nchunks, eopts,
        [&](std::size_t c) {
          AC_SPAN("classify.extract_chunk");
          const std::size_t begin = c * chunk;
          const std::size_t end = std::min(nevents, begin + chunk);
          std::vector<std::vector<AccessEvent>> local(nshards);
          for (std::size_t i = begin; i < end; ++i) {
            const AccessEvent& ev = dep.events[i];
            local[static_cast<std::size_t>(shard_of[static_cast<std::size_t>(ev.var)])]
                .push_back(ev);
          }
          static auto& depth = telemetry::metrics().gauge("classify.mailbox_depth");
          for (std::size_t s = 0; s < nshards; ++s) {
            {
              std::lock_guard<std::mutex> lock(boxes[s].mu);
              boxes[s].slices[c] = std::move(local[s]);
              boxes[s].ready[c] = 1;
            }
            depth.add(1);  // delivered, not yet consumed (max = peak backlog)
            boxes[s].cv.notify_all();
          }
        },
        /*on_ready=*/{}, &fail);

    // Extraction is done (or cancelled): wake scanners parked on mailboxes so
    // they observe either their final slices or the cancellation flag. The
    // empty critical section orders the wake after any in-flight delivery.
    for (auto& b : boxes) {
      { std::lock_guard<std::mutex> lock(b.mu); }
      b.cv.notify_all();
    }
  }
  fail.rethrow_if_failed();

  std::unordered_map<int, VarVerdict> verdicts;
  for (auto& p : partial) {
    for (auto& [var, v] : p) verdicts.emplace(var, std::move(v));
  }
  return assemble(verdicts, dep, pre);
}

}  // namespace ac::analysis
