#include "analysis/classify.hpp"

#include "support/strings.hpp"

#include <algorithm>
#include <map>
#include <thread>
#include <tuple>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace ac::analysis {

const char* dep_type_name(DepType t) {
  switch (t) {
    case DepType::WAR: return "WAR";
    case DepType::Outcome: return "Outcome";
    case DepType::RAPO: return "RAPO";
    case DepType::Index: return "Index";
    case DepType::NotCritical: return "-";
  }
  return "?";
}

namespace {

struct VarVerdict {
  bool war = false;
  bool rapo = false;
  bool outcome = false;
  std::string war_reason;
  std::string rapo_reason;
  std::string outcome_reason;
};

/// The dataflow scan over a subset of the event stream. Every piece of state
/// is keyed by variable, so running it over any variable-complete subset (all
/// events of each contained variable, in execution order) yields exactly the
/// verdicts the full-stream scan assigns those variables — the invariant the
/// sharded path relies on.
std::unordered_map<int, VarVerdict> scan_events(const AccessEvent* events, std::size_t count) {
  // Pass 1: per variable, which elements each iteration writes (Part B only),
  // so the RAPO test can ask "is this element refreshed by the current
  // iteration at all?" without caring about intra-iteration ordering.
  std::unordered_map<int, std::map<int, std::set<std::int64_t>>> written_by_iter;
  std::unordered_set<int> written_in_b;
  for (std::size_t i = 0; i < count; ++i) {
    const AccessEvent& ev = events[i];
    if (ev.part == Part::B && ev.is_write) {
      written_by_iter[ev.var][ev.iteration].insert(ev.elem);
      written_in_b.insert(ev.var);
    }
  }

  // Pass 2: stale-consumption scan.
  std::unordered_map<int, VarVerdict> verdicts;
  std::unordered_map<int, std::unordered_map<std::int64_t, int>> last_write_iter;  // Part B writes
  std::unordered_map<int, int> cur_iter_of_var;
  std::unordered_map<int, int> writes_so_far;  // within the variable's current iteration

  for (std::size_t i = 0; i < count; ++i) {
    const AccessEvent& ev = events[i];
    VarVerdict& v = verdicts[ev.var];

    if (ev.part == Part::C) {
      if (!ev.is_write && written_in_b.count(ev.var) && !v.outcome) {
        v.outcome = true;
        v.outcome_reason =
            strf("written inside the loop, consumed after it at line %d", ev.line);
      }
      continue;
    }
    if (ev.part != Part::B) continue;

    auto [it, inserted] = cur_iter_of_var.emplace(ev.var, ev.iteration);
    if (!inserted && it->second != ev.iteration) {
      it->second = ev.iteration;
      writes_so_far[ev.var] = 0;
    }

    if (ev.is_write) {
      last_write_iter[ev.var][ev.elem] = ev.iteration;
      ++writes_so_far[ev.var];
      continue;
    }

    // Read: stale iff its element's last write happened in an earlier
    // iteration of the loop (a Part-A/init value is reconstructible, not stale).
    auto& lw = last_write_iter[ev.var];
    auto w = lw.find(ev.elem);
    if (w == lw.end() || w->second >= ev.iteration) continue;

    const auto& this_iter_writes = written_by_iter[ev.var][ev.iteration];
    const bool elem_refreshed = this_iter_writes.count(ev.elem) > 0;
    const bool partially_overwritten = writes_so_far[ev.var] > 0;
    if (partially_overwritten && !elem_refreshed) {
      if (!v.rapo) {
        v.rapo = true;
        v.rapo_reason = strf(
            "element %lld written in iteration %d is read at line %d in iteration %d, "
            "after this iteration partially overwrote the array",
            static_cast<long long>(ev.elem), w->second, ev.line, ev.iteration);
      }
    } else if (!v.war) {
      v.war = true;
      v.war_reason =
          strf("value written in iteration %d is consumed at line %d in iteration %d "
               "before being overwritten",
               w->second, ev.line, ev.iteration);
    }
  }
  return verdicts;
}

/// Deterministic assembly of the final verdict list from the per-variable
/// scan results: MLI discovery order with Index-only variables appended.
ClassifyResult assemble(const std::unordered_map<int, VarVerdict>& verdicts,
                        const DepResult& dep, const PreprocessResult& pre) {
  // Index variables: read by the header condition and written inside the loop.
  std::set<int> index_vars;
  for (int var : dep.induction.cond_read) {
    const auto& w = dep.induction.written_in_b;
    if (static_cast<std::size_t>(var) < w.size() && w[static_cast<std::size_t>(var)]) {
      index_vars.insert(var);
    }
  }

  auto type_of = [&](int var_id) -> std::pair<DepType, std::string> {
    if (index_vars.count(var_id)) {
      const bool self = dep.induction.self_rmw.count(var_id) > 0;
      return {DepType::Index, self ? "loop induction variable (self-updated at the header)"
                                   : "read by the loop condition and written inside the loop"};
    }
    auto it = verdicts.find(var_id);
    if (it == verdicts.end()) return {DepType::NotCritical, ""};
    if (it->second.rapo) return {DepType::RAPO, it->second.rapo_reason};
    if (it->second.war) return {DepType::WAR, it->second.war_reason};
    if (it->second.outcome) return {DepType::Outcome, it->second.outcome_reason};
    return {DepType::NotCritical, ""};
  };

  ClassifyResult out;
  std::set<int> reported;
  for (const MliVar& m : pre.mli) {
    CriticalVar cv;
    cv.var_id = m.var_id;
    cv.name = m.name;
    cv.decl_line = m.decl_line;
    cv.bytes = m.bytes;
    std::tie(cv.type, cv.reason) = type_of(m.var_id);
    out.all_mli.push_back(cv);
    if (cv.type != DepType::NotCritical) {
      out.critical.push_back(cv);
      reported.insert(m.var_id);
    }
  }
  for (int var : index_vars) {
    if (reported.count(var)) continue;
    const VarDef& def = pre.vars.def(var);
    CriticalVar cv;
    cv.var_id = var;
    cv.name = def.name;
    cv.decl_line = def.decl_line;
    cv.bytes = def.bytes;
    std::tie(cv.type, cv.reason) = type_of(var);
    out.critical.push_back(cv);
  }
  return out;
}

}  // namespace

ClassifyResult classify(const DepResult& dep, const PreprocessResult& pre) {
  return assemble(scan_events(dep.events.data(), dep.events.size()), dep, pre);
}

std::vector<int> lpt_shard_assignment(const std::vector<std::pair<int, std::uint64_t>>& counts,
                                      int nshards) {
  std::vector<int> assignment(counts.size(), 0);
  if (nshards <= 1) return assignment;

  // Sort by descending event count, ties by ascending var id — deterministic
  // regardless of the order counts were gathered in.
  std::vector<std::size_t> order(counts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (counts[a].second != counts[b].second) return counts[a].second > counts[b].second;
    return counts[a].first < counts[b].first;
  });

  std::vector<std::uint64_t> load(static_cast<std::size_t>(nshards), 0);
  for (const std::size_t i : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < load.size(); ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    assignment[i] = static_cast<int>(lightest);
    load[lightest] += counts[i].second;
  }
  return assignment;
}

ClassifyResult classify_sharded(const DepResult& dep, const PreprocessResult& pre, int threads) {
  // More shards than MLI variables only produces empty shards, and an
  // unbounded user-supplied count must not translate into thousands of
  // threads — clamp to something a machine can always deliver.
  threads = std::min({threads, 256, std::max<int>(1, static_cast<int>(pre.mli.size()))});
  if (threads <= 1 || dep.events.empty()) return classify(dep, pre);

  // Per-variable event totals, then the LPT assignment: the skewed apps put
  // nearly every event on one hot array, so `var % threads` used to hand one
  // worker the whole stream — balancing by event count is the ROADMAP's
  // rebalancing follow-up (a speed change only; verdicts are pinned
  // bit-identical by tests/test_session.cpp).
  // Var ids are dense small ints, so the counting and the shard-of-var table
  // are flat arrays — workers index, they don't hash.
  std::size_t max_var = 0;
  for (const AccessEvent& ev : dep.events) {
    max_var = std::max(max_var, static_cast<std::size_t>(ev.var));
  }
  std::vector<std::uint64_t> totals(max_var + 1, 0);
  for (const AccessEvent& ev : dep.events) ++totals[static_cast<std::size_t>(ev.var)];
  std::vector<std::pair<int, std::uint64_t>> counts;
  for (std::size_t var = 0; var <= max_var; ++var) {
    if (totals[var]) counts.emplace_back(static_cast<int>(var), totals[var]);
  }
  const std::vector<int> assignment = lpt_shard_assignment(counts, threads);
  std::vector<int> shard_of(max_var + 1, -1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    shard_of[static_cast<std::size_t>(counts[i].first)] = assignment[i];
  }

  const std::size_t nshards = static_cast<std::size_t>(threads);
  std::vector<std::vector<AccessEvent>> shards(nshards);
  std::vector<std::unordered_map<int, VarVerdict>> partial(nshards);
  {
    std::vector<std::thread> pool;
    pool.reserve(nshards);
    // Joins whatever got started even when a later pthread_create fails, so
    // the resource-exhaustion error propagates instead of std::terminate.
    struct Joiner {
      std::vector<std::thread>& pool;
      ~Joiner() {
        for (auto& t : pool) {
          if (t.joinable()) t.join();
        }
      }
    } joiner{pool};
    // The per-variable event extraction fans out onto the same pool (the
    // ROADMAP's "parallelize dep-analysis" follow-up: the replay is
    // sequential by nature, but the extraction is a data-parallel sweep):
    // every worker scans the shared event array once, keeping the events of
    // its own shard's variables in execution order, then scans its shard.
    for (std::size_t s = 0; s < nshards; ++s) {
      pool.emplace_back([&, s] {
        std::vector<AccessEvent>& mine = shards[s];
        for (const AccessEvent& ev : dep.events) {
          if (static_cast<std::size_t>(shard_of[static_cast<std::size_t>(ev.var)]) == s) {
            mine.push_back(ev);
          }
        }
        partial[s] = scan_events(mine.data(), mine.size());
      });
    }
  }

  // Shards own disjoint variable sets, so the merge is a plain union; the
  // deterministic ordering comes from assemble(), not from merge order.
  std::unordered_map<int, VarVerdict> verdicts;
  for (auto& p : partial) {
    for (auto& [var, v] : p) verdicts.emplace(var, std::move(v));
  }
  return assemble(verdicts, dep, pre);
}

}  // namespace ac::analysis
