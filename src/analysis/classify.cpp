#include "analysis/classify.hpp"

#include "support/strings.hpp"

#include <map>
#include <tuple>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace ac::analysis {

const char* dep_type_name(DepType t) {
  switch (t) {
    case DepType::WAR: return "WAR";
    case DepType::Outcome: return "Outcome";
    case DepType::RAPO: return "RAPO";
    case DepType::Index: return "Index";
    case DepType::NotCritical: return "-";
  }
  return "?";
}

namespace {

struct VarVerdict {
  bool war = false;
  bool rapo = false;
  bool outcome = false;
  std::string war_reason;
  std::string rapo_reason;
  std::string outcome_reason;
};

}  // namespace

ClassifyResult classify(const DepResult& dep, const PreprocessResult& pre) {
  // Pass 1: per variable, which elements each iteration writes (Part B only),
  // so the RAPO test can ask "is this element refreshed by the current
  // iteration at all?" without caring about intra-iteration ordering.
  std::unordered_map<int, std::map<int, std::set<std::int64_t>>> written_by_iter;
  std::unordered_set<int> written_in_b;
  for (const AccessEvent& ev : dep.events) {
    if (ev.part == Part::B && ev.is_write) {
      written_by_iter[ev.var][ev.iteration].insert(ev.elem);
      written_in_b.insert(ev.var);
    }
  }

  // Pass 2: stale-consumption scan.
  std::unordered_map<int, VarVerdict> verdicts;
  std::unordered_map<int, std::unordered_map<std::int64_t, int>> last_write_iter;  // Part B writes
  std::unordered_map<int, int> cur_iter_of_var;
  std::unordered_map<int, int> writes_so_far;  // within the variable's current iteration

  for (const AccessEvent& ev : dep.events) {
    VarVerdict& v = verdicts[ev.var];

    if (ev.part == Part::C) {
      if (!ev.is_write && written_in_b.count(ev.var) && !v.outcome) {
        v.outcome = true;
        v.outcome_reason =
            strf("written inside the loop, consumed after it at line %d", ev.line);
      }
      continue;
    }
    if (ev.part != Part::B) continue;

    auto [it, inserted] = cur_iter_of_var.emplace(ev.var, ev.iteration);
    if (!inserted && it->second != ev.iteration) {
      it->second = ev.iteration;
      writes_so_far[ev.var] = 0;
    }

    if (ev.is_write) {
      last_write_iter[ev.var][ev.elem] = ev.iteration;
      ++writes_so_far[ev.var];
      continue;
    }

    // Read: stale iff its element's last write happened in an earlier
    // iteration of the loop (a Part-A/init value is reconstructible, not stale).
    auto& lw = last_write_iter[ev.var];
    auto w = lw.find(ev.elem);
    if (w == lw.end() || w->second >= ev.iteration) continue;

    const auto& this_iter_writes = written_by_iter[ev.var][ev.iteration];
    const bool elem_refreshed = this_iter_writes.count(ev.elem) > 0;
    const bool partially_overwritten = writes_so_far[ev.var] > 0;
    if (partially_overwritten && !elem_refreshed) {
      if (!v.rapo) {
        v.rapo = true;
        v.rapo_reason = strf(
            "element %lld written in iteration %d is read at line %d in iteration %d, "
            "after this iteration partially overwrote the array",
            static_cast<long long>(ev.elem), w->second, ev.line, ev.iteration);
      }
    } else if (!v.war) {
      v.war = true;
      v.war_reason =
          strf("value written in iteration %d is consumed at line %d in iteration %d "
               "before being overwritten",
               w->second, ev.line, ev.iteration);
    }
  }

  // Index variables: read by the header condition and written inside the loop.
  std::set<int> index_vars;
  for (int var : dep.induction.cond_read) {
    const auto& w = dep.induction.written_in_b;
    if (static_cast<std::size_t>(var) < w.size() && w[static_cast<std::size_t>(var)]) {
      index_vars.insert(var);
    }
  }

  auto type_of = [&](int var_id) -> std::pair<DepType, std::string> {
    if (index_vars.count(var_id)) {
      const bool self = dep.induction.self_rmw.count(var_id) > 0;
      return {DepType::Index, self ? "loop induction variable (self-updated at the header)"
                                   : "read by the loop condition and written inside the loop"};
    }
    auto it = verdicts.find(var_id);
    if (it == verdicts.end()) return {DepType::NotCritical, ""};
    if (it->second.rapo) return {DepType::RAPO, it->second.rapo_reason};
    if (it->second.war) return {DepType::WAR, it->second.war_reason};
    if (it->second.outcome) return {DepType::Outcome, it->second.outcome_reason};
    return {DepType::NotCritical, ""};
  };

  ClassifyResult out;
  std::set<int> reported;
  for (const MliVar& m : pre.mli) {
    CriticalVar cv;
    cv.var_id = m.var_id;
    cv.name = m.name;
    cv.decl_line = m.decl_line;
    cv.bytes = m.bytes;
    std::tie(cv.type, cv.reason) = type_of(m.var_id);
    out.all_mli.push_back(cv);
    if (cv.type != DepType::NotCritical) {
      out.critical.push_back(cv);
      reported.insert(m.var_id);
    }
  }
  for (int var : index_vars) {
    if (reported.count(var)) continue;
    const VarDef& def = pre.vars.def(var);
    CriticalVar cv;
    cv.var_id = var;
    cv.name = def.name;
    cv.decl_line = def.decl_line;
    cv.bytes = def.bytes;
    std::tie(cv.type, cv.reason) = type_of(var);
    out.critical.push_back(cv);
  }
  return out;
}

}  // namespace ac::analysis
