// Main-computation-loop (MCL) region description and source-marker scanning.
//
// AutoCheck's user contract (paper §VII "Use of AutoCheck"): the user supplies
// the loop's host function and its start/end source lines. For the bundled
// mini-apps the region is marked in the MiniC source with
//     //@mcl-begin
//     for (...) { ... }
//     //@mcl-end
// and recovered with find_mcl_region().
#pragma once

#include <string>

namespace ac::analysis {

struct MclRegion {
  std::string function = "main";
  int begin_line = 0;  // the loop-header line (the `for`/`while` line)
  int end_line = 0;    // the last line of the loop body

  bool contains(int line) const { return line >= begin_line && line <= end_line; }
};

/// Scan `source` for the //@mcl-begin / //@mcl-end markers; the region starts
/// on the line following the begin marker and ends on the line preceding the
/// end marker. Throws ac::AnalysisError when markers are missing or inverted.
MclRegion find_mcl_region(const std::string& source, std::string function = "main");

}  // namespace ac::analysis
