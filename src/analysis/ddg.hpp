// Data dependency graph (paper Fig. 5(c)/(d) and Algorithm 1).
//
// The *complete* DDG contains three node classes — MLI variables, other
// variables (locals / non-MLI), and temporary registers — with edges directed
// parent -> child along the dataflow (a Load adds var -> reg, an arithmetic
// instruction adds operand regs -> result reg, a Store adds reg -> var).
//
// Contraction (Algorithm 1) repeatedly replaces each non-MLI parent of an MLI
// vertex with that parent's parents, dropping parentless non-MLI vertices,
// until only MLI vertices remain. The fixpoint equals path-reachability
// through non-MLI vertices, which is how contract() computes it; the
// step-wise behaviour is unit-tested against the paper's worked example
// (`sum` ⇐ 13 ⇐ m ⇐ 12 ⇐ {10,11} ⇐ {a,b}).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace ac::analysis {

enum class NodeKind : std::uint8_t { MliVar, OtherVar, Register };

class Ddg {
 public:
  /// Get-or-create a node; `label` must be unique per node (callers qualify
  /// register names by function).
  int node(const std::string& label, NodeKind kind);

  void add_edge(int parent, int child);

  int num_nodes() const { return static_cast<int>(labels_.size()); }
  std::size_t num_edges() const { return edges_.size(); }
  const std::string& label(int n) const { return labels_.at(static_cast<std::size_t>(n)); }
  NodeKind kind(int n) const { return kinds_.at(static_cast<std::size_t>(n)); }
  bool has_node(const std::string& label) const { return index_.count(label) > 0; }
  int find(const std::string& label) const;  // -1 when absent

  std::vector<int> parents(int n) const;
  std::vector<int> children(int n) const;
  bool has_edge(int parent, int child) const { return edges_.count({parent, child}) > 0; }

  /// Algorithm 1: the MLI-only contracted DDG. Node labels are preserved.
  Ddg contract() const;

  /// GraphViz export (MLI vars as boxes, locals as ellipses, registers dashed).
  std::string to_dot() const;

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> labels_;
  std::vector<NodeKind> kinds_;
  std::set<std::pair<int, int>> edges_;  // (parent, child)
};

}  // namespace ac::analysis
