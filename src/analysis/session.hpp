// The unified analysis pipeline API.
//
// A Session composes the whole AutoCheck workflow from three pluggable parts:
//
//   TraceSource  -->  analysis pipeline  -->  ReportSink(s)
//   (file, memory,    preprocess -> MLI ->    (text, JSON, DOT,
//    live execution)  dep analysis ->          Protect() emission,
//                     classification)          CheckpointEngine)
//
// replacing the four parallel entry surfaces that grew around the facade
// (analyze_records / analyze_file / StreamingAutoCheck / hand-rolled
// read-then-analyze loops). Every capability is available from every source:
// the §V-A parallel trace read, the §IX trace-file-free streaming mode, and
// the parallel classification this module adds — the event stream is
// partitioned per variable after dependency analysis and classified
// concurrently (the pipelined producer/consumer path, classify_pipelined:
// extraction chunks stream into per-shard scanners with no barrier), with
// verdicts bit-identical to the sequential path.
//
// The legacy entry points are thin wrappers over Session; new code should use
// Session directly:
//
//   auto report = analysis::Session()
//                     .file("app.trace")
//                     .region(region)
//                     .options({.threads = 4})
//                     .sink(std::make_shared<analysis::JsonSink>(&json_out))
//                     .run();
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/autocheck.hpp"
#include "support/timer.hpp"
#include "trace/source.hpp"

namespace ac::ckpt {
class CheckpointEngine;
}

namespace ac::analysis {

/// Pipeline configuration, subsuming the legacy AutoCheckOptions (which
/// converts implicitly via its operator AnalysisOptions). One knob drives all
/// parallelism: `threads > 1` alone enables both the parallel trace read and
/// the sharded parallel classification; the per-stage overrides exist for
/// asymmetric budgets. An aggregate, so designated initializers work:
/// `options({.threads = 4})`.
struct AnalysisOptions {
  MliMode mli_mode = MliMode::AddressResolved;
  bool build_ddg = true;

  /// Worker budget for the whole pipeline. 1 = fully sequential.
  int threads = 1;
  /// Per-stage overrides; 0 = follow `threads`.
  int read_threads = 0;
  int analysis_threads = 0;

  /// Enable the process-wide telemetry layer (support/telemetry.hpp) for this
  /// run: Session::run() turns span recording on before the pipeline and
  /// leaves it on so the caller can export (--profile/--metrics). Off, every
  /// AC_SPAN in the pipeline is a single relaxed atomic load.
  bool telemetry = false;

  int effective_read_threads() const { return read_threads > 0 ? read_threads : threads; }
  int effective_analysis_threads() const {
    return analysis_threads > 0 ? analysis_threads : threads;
  }
};

/// Runtime default worker count (hardware concurrency, at least 1).
int default_thread_count();

/// What a sink sees besides the Report itself.
struct SessionContext {
  const MclRegion& region;
  /// The materialized trace in its interned packed form, or nullptr for live
  /// sources. Sinks that need owning TraceRecords can materialize individual
  /// views (trace->materialize(i)).
  const trace::TraceBuffer* trace = nullptr;
  /// TraceSource::describe() of the session's source.
  std::string source_name;
};

/// Consumes a finished Report. Sinks run in registration order after the
/// pipeline completes; they must not mutate the report.
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual void consume(const Report& report, const SessionContext& ctx) = 0;
};

/// Report::render() to a stream or string.
class TextSink final : public ReportSink {
 public:
  explicit TextSink(std::FILE* out = stdout) : out_(out) {}
  explicit TextSink(std::string* capture) : capture_(capture) {}
  void consume(const Report& report, const SessionContext& ctx) override;

 private:
  std::FILE* out_ = nullptr;
  std::string* capture_ = nullptr;
};

/// Report::to_json() to a stream or string.
class JsonSink final : public ReportSink {
 public:
  explicit JsonSink(std::FILE* out = stdout) : out_(out) {}
  explicit JsonSink(std::string* capture) : capture_(capture) {}
  void consume(const Report& report, const SessionContext& ctx) override;

  /// false = omit the timings object (deterministic bytes; see
  /// Report::to_json).
  JsonSink& with_timings(bool on) {
    with_timings_ = on;
    return *this;
  }

 private:
  std::FILE* out_ = nullptr;
  std::string* capture_ = nullptr;
  bool with_timings_ = true;
};

/// Contracted-DDG DOT to a file or string (requires build_ddg).
class DotSink final : public ReportSink {
 public:
  explicit DotSink(std::string path) : path_(std::move(path)) {}
  explicit DotSink(std::string* capture) : capture_(capture) {}
  void consume(const Report& report, const SessionContext& ctx) override;

 private:
  std::string path_;
  std::string* capture_ = nullptr;
};

/// The paper's downstream story: render the CheckpointEngine registration
/// calls (FTI-style Protect()) for every critical variable, with its live
/// arena address and footprint pulled from its last Alloca in the trace.
/// Needs a materialized trace — throws ac::Error on a live source.
class ProtectSink final : public ReportSink {
 public:
  explicit ProtectSink(std::FILE* out = stdout) : out_(out) {}
  explicit ProtectSink(std::string* capture) : capture_(capture) {}
  void consume(const Report& report, const SessionContext& ctx) override;

  /// When set (a ckpt::CodecChain spec, e.g. "xor+rle+lz"), the emitted
  /// snippet also configures the engine's payload codecs. Validate the spec
  /// with CodecChain::parse before handing it over — the sink emits verbatim.
  ProtectSink& codec_spec(std::string spec) {
    codec_spec_ = std::move(spec);
    return *this;
  }

 private:
  std::FILE* out_ = nullptr;
  std::string* capture_ = nullptr;
  std::string codec_spec_;
};

/// Registers the report's critical set directly with a CheckpointEngine
/// (engine.register_report) — the no-serialization path from analysis to C/R.
class EngineSink final : public ReportSink {
 public:
  explicit EngineSink(ckpt::CheckpointEngine& engine) : engine_(&engine) {}
  void consume(const Report& report, const SessionContext& ctx) override;

 private:
  ckpt::CheckpointEngine* engine_;
};

/// Builder-style pipeline driver. Configure a source, a region and options,
/// attach any number of sinks, then run() to get the Report (sinks fire after
/// the pipeline, in registration order).
class Session {
 public:
  Session() = default;

  /// Any TraceSource implementation.
  Session& source(std::shared_ptr<trace::TraceSource> src);
  /// Trace file (serial or parallel zero-copy mmap parse, per options().threads).
  Session& file(const std::string& path);
  /// An interned trace buffer (zero-copy; e.g. from trace::BufferSink).
  Session& buffer(trace::TraceBuffer&& buf);
  /// Borrowed legacy in-memory records (caller keeps them alive across run();
  /// interned into a buffer on first use).
  Session& records(const std::vector<trace::TraceRecord>& recs);
  /// Owned legacy in-memory records (interned immediately).
  Session& records(std::vector<trace::TraceRecord>&& recs);
  /// Live instrumented execution; the generator is run once per pass.
  Session& live(trace::LiveSource::Generator gen);

  Session& region(MclRegion r);
  /// Scan MiniC source text for the //@mcl-begin / //@mcl-end markers.
  Session& region_from_markers(const std::string& source_text,
                               const std::string& function = "main");

  Session& options(const AnalysisOptions& opts);
  Session& sink(std::shared_ptr<ReportSink> s);

  const std::shared_ptr<trace::TraceSource>& trace_source() const { return source_; }
  const AnalysisOptions& analysis_options() const { return opts_; }

  /// Run the pipeline: read -> preprocess/MLI -> dependency analysis ->
  /// (sharded) classification -> sinks. Live sources run the two-pass
  /// streaming pipeline; batch sources the single-pass one. Throws ac::Error
  /// when no source is set or the region is invalid.
  Report run();

 private:
  std::shared_ptr<trace::TraceSource> source_;
  MclRegion region_;
  AnalysisOptions opts_;
  std::vector<std::shared_ptr<ReportSink>> sinks_;

  Report run_batch();
  Report run_live();
};

/// Push-based incremental session: the live two-pass pipeline with explicit
/// pass boundaries, for callers that drive record emission themselves (an
/// instrumented execution that cannot be wrapped in a LiveSource generator).
/// Session's live path and the legacy StreamingAutoCheck are both built on
/// this class. Timing attribution is whole-pass wall clock, from a pass's
/// first record to its seal (the driving execution included, caller idle
/// time between passes excluded): preprocessing = pass 1, dep_analysis =
/// pass 2, identify = classification.
class SessionStream {
 public:
  SessionStream(const MclRegion& region, const AnalysisOptions& opts = {});

  /// Pass 1: feed every record of the first execution, then seal it.
  void pass1_add(const trace::TraceRecord& rec);
  void finish_pass1();

  /// Pass 2: feed every record of the (identical) second execution.
  /// Throws if pass 1 was not finished.
  void pass2_add(const trace::TraceRecord& rec);

  /// Classification (sharded per options) + DDG contraction; returns the
  /// same Report as the batch pipeline on the materialized trace.
  Report finish();

 private:
  MclRegion region_;
  AnalysisOptions opts_;
  Report report_;
  MliCollector collector_;
  std::unique_ptr<DepAnalyzer> analyzer_;
  WallTimer pass_timer_;  // restarted at each pass's first record
  bool pass_timer_live_ = false;
  double pass1_seconds_ = 0;
  double pass2_seconds_ = 0;
  bool pass1_done_ = false;
};

}  // namespace ac::analysis
