// Streaming (trace-file-free) AutoCheck — the paper's stated future work:
// "incorporate AutoCheck into LLVM to be an independent LLVM instrumentation
// tool to eliminate the performance bottleneck because of trace file
// processing" (§IX).
//
// Instead of materializing the dynamic trace, the instrumented execution
// feeds records directly into the analysis, twice:
//   pass 1 — partition discovery + MLI identification (MliCollector);
//   pass 2 — dependency analysis over the identical re-execution
//            (DepAnalyzer; deterministic programs replay identically).
// Batch and streaming verdicts are identical by construction — the batch
// entry points are wrappers over the same incremental classes — and the
// equivalence is verified by tests over all 14 benchmarks.
#pragma once

#include "analysis/session.hpp"

namespace ac::analysis {

/// Legacy wrapper over SessionStream (the Session pipeline's push-based
/// incremental mode); kept for source compatibility. New code should use
/// Session with a LiveSource, or SessionStream directly.
class StreamingAutoCheck {
 public:
  explicit StreamingAutoCheck(const MclRegion& region, const AutoCheckOptions& opts = {});

  /// Pass 1: feed every record of the first execution, then seal it.
  void pass1_add(const trace::TraceRecord& rec);
  void finish_pass1();

  /// Pass 2: feed every record of the (identical) second execution.
  /// Throws if pass 1 was not finished.
  void pass2_add(const trace::TraceRecord& rec);

  /// Classification + DDG contraction; returns the same Report as
  /// analyze_records() on the materialized trace.
  Report finish();

 private:
  SessionStream stream_;
};

}  // namespace ac::analysis
