// AutoCheck facade (paper Fig. 2): pre-processing -> data dependency analysis
// -> identification of critical variables, with the per-phase wall-clock
// breakdown that Table III reports.
//
// The entry points below are thin wrappers over the unified pipeline in
// analysis/session.hpp (Session + TraceSource + ReportSink); new code should
// use Session directly — it adds pluggable sources/sinks and the parallel
// sharded classification behind AnalysisOptions::threads.
#pragma once

#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "analysis/depanalysis.hpp"
#include "analysis/preprocess.hpp"
#include "analysis/region.hpp"

namespace ac::analysis {

struct AnalysisOptions;  // session.hpp

/// Legacy options, superseded by AnalysisOptions (session.hpp), into which
/// they convert implicitly.
struct AutoCheckOptions {
  MliMode mli_mode = MliMode::AddressResolved;
  bool build_ddg = true;
  /// analyze_file() only: parse the trace with the §V-A OpenMP optimization.
  bool parallel_read = false;
  int read_threads = 0;  // 0 = runtime default; honored with or without parallel_read

  /// Upgrade to the Session pipeline's options (defined in session.cpp).
  operator AnalysisOptions() const;  // NOLINT(google-explicit-constructor)
};

struct Timings {
  double preprocessing = 0;  // trace parse (file path) + partition + MLI
  double dep_analysis = 0;
  double identify = 0;
  double total() const { return preprocessing + dep_analysis + identify; }
};

struct Report {
  MclRegion region;
  PreprocessResult pre;
  DepResult dep;
  ClassifyResult verdicts;
  Ddg contracted;  // Algorithm-1 contraction of dep.complete
  Timings timings;

  const std::vector<CriticalVar>& critical() const { return verdicts.critical; }
  std::vector<std::string> critical_names() const;
  const CriticalVar* find_critical(const std::string& name) const;

  /// Human-readable summary (MLI set, verdicts, timings).
  std::string render() const;

  /// Machine-readable report (region, MLI set, verdicts, timings, stats) —
  /// what downstream C/R tooling consumes to emit Protect() calls. Pass
  /// with_timings = false to drop the wall-clock timings object, making the
  /// bytes a pure function of trace + region — what lets CI diff a
  /// daemon-served report byte-for-byte against a local run.
  std::string to_json(bool with_timings = true) const;

  /// The Fig. 5(e) view: "1: s-Write; 2: s-Read; ..." (first `max_events`).
  std::string render_events(std::size_t max_events = 64) const;
};

/// Analyze an in-memory record stream.
Report analyze_records(const std::vector<trace::TraceRecord>& records, const MclRegion& region,
                       const AutoCheckOptions& opts = {});

/// Analyze a trace file; parsing is attributed to the pre-processing phase
/// (it dominates, as the paper observes).
Report analyze_file(const std::string& path, const MclRegion& region,
                    const AutoCheckOptions& opts = {});

}  // namespace ac::analysis
