// Data dependency analysis (paper §IV-B): a single ordered replay of the
// trace that maintains the reg-var map (register provenance), the reg-reg map
// (arithmetic links), call argument/parameter correlations and the on-the-fly
// address map — and produces:
//   * the execution-time-ordered Read/Write event sequence on MLI variables
//     (Fig. 5(e)), element-granular so RAPO detection works on arrays;
//   * the complete DDG over variables and registers (Fig. 5(c));
//   * induction-detection facts (header condition reads, self-dependent
//     header stores, loop write set).
//
// The replay runs natively on the interned packed representation: register
// provenance and the reg-reg map are keyed by SymbolPool ids (integer hashes,
// no string traffic), and DDG nodes are resolved through id-keyed caches that
// produce exactly the legacy labels. One implementation serves the batch path
// (a TraceBuffer replay) and the streaming path (TraceRecords packed one at a
// time), so batch and streaming results are identical by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "analysis/ddg.hpp"
#include "analysis/preprocess.hpp"

namespace ac::analysis {

struct AccessEvent {
  int var = -1;
  std::int64_t elem = 0;       // 8-byte element index within the variable
  std::uint64_t t = 0;         // record index (execution order)
  int line = 0;                // source line of the access (witness reporting)
  int iteration = 0;           // 0 = outside/before loop body, 1-based inside
  Part part = Part::A;
  bool is_write = false;
};

struct InductionInfo {
  std::set<int> cond_read;    // vars loaded at the MCL header line (part B)
  std::set<int> self_rmw;     // header-line stores whose value depends on the target
  std::vector<char> written_in_b;  // by canonical var id
};

struct DepOptions {
  bool build_ddg = true;  // the event stream alone suffices for classification
};

struct DepResult {
  std::vector<AccessEvent> events;  // MLI variables only, in execution order
  Ddg complete;                     // complete DDG (vars + registers)
  InductionInfo induction;
  int iterations = 0;               // MCL header evaluations observed
  std::uint64_t stores_seen = 0;
  std::uint64_t pointer_assignments = 0;
};

/// Batch replay over the interned buffer (the fast path).
/// `pre.vars` is extended in place (callee locals may first appear here).
DepResult dep_analysis(const trace::TraceBuffer& buf, PreprocessResult& pre,
                       const MclRegion& region, const DepOptions& opts = {});

/// Legacy batch entry point over owning records (wraps the streaming class).
DepResult dep_analysis(const std::vector<trace::TraceRecord>& records, PreprocessResult& pre,
                       const MclRegion& region, const DepOptions& opts = {});

/// Incremental dependency analysis: feed records one at a time (second pass
/// of the streaming pipeline; requires a finished PreprocessResult so the
/// loop partition is known). dep_analysis() wraps this class, so batch and
/// streaming results are identical by construction.
class DepAnalyzer {
 public:
  DepAnalyzer(PreprocessResult& pre, const MclRegion& region, const DepOptions& opts = {});
  ~DepAnalyzer();
  DepAnalyzer(const DepAnalyzer&) = delete;
  DepAnalyzer& operator=(const DepAnalyzer&) = delete;

  void add(const trace::TraceRecord& rec);
  DepResult finish();

  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace ac::analysis
