#include "analysis/streaming.hpp"

namespace ac::analysis {

StreamingAutoCheck::StreamingAutoCheck(const MclRegion& region, const AutoCheckOptions& opts)
    : stream_(region, opts) {}

void StreamingAutoCheck::pass1_add(const trace::TraceRecord& rec) { stream_.pass1_add(rec); }

void StreamingAutoCheck::finish_pass1() { stream_.finish_pass1(); }

void StreamingAutoCheck::pass2_add(const trace::TraceRecord& rec) { stream_.pass2_add(rec); }

Report StreamingAutoCheck::finish() { return stream_.finish(); }

}  // namespace ac::analysis
