#include "analysis/streaming.hpp"

#include "support/error.hpp"
#include "support/timer.hpp"

namespace ac::analysis {

StreamingAutoCheck::StreamingAutoCheck(const MclRegion& region, const AutoCheckOptions& opts)
    : region_(region), opts_(opts), collector_(region, opts.mli_mode) {
  report_.region = region;
}

void StreamingAutoCheck::pass1_add(const trace::TraceRecord& rec) {
  // Hot path: no per-record timing (phase costs are attributed by the caller
  // around whole passes; see apps::analyze_app_streaming).
  collector_.add(rec);
}

void StreamingAutoCheck::finish_pass1() {
  AC_CHECK(!pass1_done_, "finish_pass1 called twice");
  WallTimer t;
  report_.pre = collector_.finish();
  DepOptions dep_opts;
  dep_opts.build_ddg = opts_.build_ddg;
  analyzer_ = std::make_unique<DepAnalyzer>(report_.pre, region_, dep_opts);
  pass1_seconds_ += t.seconds();
  pass1_done_ = true;
}

void StreamingAutoCheck::pass2_add(const trace::TraceRecord& rec) {
  AC_CHECK(pass1_done_, "pass2_add before finish_pass1");
  analyzer_->add(rec);
}

Report StreamingAutoCheck::finish() {
  AC_CHECK(pass1_done_, "finish before finish_pass1");
  WallTimer t;
  report_.dep = analyzer_->finish();
  report_.verdicts = classify(report_.dep, report_.pre);
  if (opts_.build_ddg) report_.contracted = report_.dep.complete.contract();
  report_.timings.preprocessing = pass1_seconds_;
  report_.timings.dep_analysis = pass2_seconds_;
  report_.timings.identify = t.seconds();
  return std::move(report_);
}

}  // namespace ac::analysis
