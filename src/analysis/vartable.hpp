// Variable identity and the on-the-fly address map.
//
// VarTable assigns one canonical id per logical variable, keyed by
// (function, name, declaration line) — so `sum` in main and a deceiver local
// `sum` inside a callee (the paper's Challenge 2) are distinct, while the
// same local across repeated invocations of one function is a single logical
// variable.
//
// AddressMap tracks which canonical variable currently owns each address
// interval. It is updated in trace order exactly like the paper's reg-var
// map: a fresh Alloca overrides whatever previously occupied that stack
// region (the VM reuses stack addresses across calls, so this matters).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/pool.hpp"

namespace ac::analysis {

struct VarDef {
  int id = -1;
  std::string name;
  std::string func;  // "<global>" for module globals
  int decl_line = 0;
  std::uint64_t bytes = 0;  // storage footprint (last seen)

  bool is_global() const { return func == "<global>"; }
};

class VarTable {
 public:
  /// Get-or-create the canonical id for (func, name, decl_line). Keyed by the
  /// names themselves (not pool ids), so results built by different pool
  /// instances — streaming pass 1 vs pass 2, batch vs live — agree on ids.
  int canonical(std::string_view func, std::string_view name, int decl_line,
                std::uint64_t bytes);

  const VarDef& def(int id) const { return defs_.at(static_cast<std::size_t>(id)); }
  std::size_t size() const { return defs_.size(); }

  /// Refresh the storage footprint to the last seen non-zero size (same
  /// semantics as a canonical() re-encounter; used by id-cached fast paths).
  void update_bytes(int id, std::uint64_t bytes) {
    if (bytes > 0) defs_.at(static_cast<std::size_t>(id)).bytes = bytes;
  }

 private:
  std::map<std::string, int, std::less<>> index_;  // "func\0name\0line" -> id
  std::vector<VarDef> defs_;
};

/// Pool-id-keyed fast path in front of VarTable::canonical, shared by the
/// pre-processing and dep-analysis replays: after a site's first sighting,
/// the hot Alloca path resolves (func id, name id, decl line) -> canonical id
/// without touching the string-keyed map, while preserving canonical()'s
/// "last seen non-zero bytes" refresh semantics.
class AllocaSiteCache {
 public:
  int canonical(VarTable& vars, const trace::SymbolPool& pool, std::uint32_t func,
                std::uint32_t name, int decl_line, std::uint64_t bytes);

 private:
  // (func << 32 | name) -> (decl line, var id) entries; lines per site are
  // almost always unique, so the inner scan is 1-2 entries.
  std::unordered_map<std::uint64_t, std::vector<std::pair<int, int>>> sites_;
};

class AddressMap {
 public:
  /// Bind [base, base+bytes) to `var_id`, evicting overlapped intervals.
  void bind(std::uint64_t base, std::uint64_t bytes, int var_id);

  struct Hit {
    int var = -1;
    std::int64_t elem = 0;  // 8-byte element index within the variable
  };

  /// Resolve an address to the owning variable, or nullopt for foreign
  /// addresses (which a well-formed trace never produces).
  std::optional<Hit> resolve(std::uint64_t addr) const;

 private:
  struct Interval {
    std::uint64_t bytes = 0;
    int var = -1;
  };
  std::map<std::uint64_t, Interval> by_base_;
};

}  // namespace ac::analysis
