#include "analysis/depanalysis.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace ac::analysis {

using trace::Opcode;
using trace::Operand;
using trace::OperandSlot;
using trace::TraceRecord;

namespace {

/// Immediate variable provenance of a register: the set of (var, element)
/// sources whose values flow into it (the reg-var map of §IV-B, with the
/// reg-reg map folded in by unioning across arithmetic instructions).
struct Prov {
  std::vector<std::pair<int, std::int64_t>> sources;

  void add(int var, std::int64_t elem) {
    for (const auto& s : sources) {
      if (s.first == var && s.second == elem) return;
    }
    // Reductions keep provenance small by SSA re-loading; the cap only guards
    // pathological chains.
    if (sources.size() < 64) sources.emplace_back(var, elem);
  }
  void merge(const Prov& other) {
    for (const auto& s : other.sources) add(s.first, s.second);
  }
};

struct AnalysisFrame {
  std::string func;
  std::unordered_map<std::string, Prov> reg_prov;
  std::string pending_dst;  // caller register awaiting this frame's Ret value
};

}  // namespace

struct DepAnalyzer::Impl {
  PreprocessResult& pre;
  MclRegion region;
  DepOptions opts;

  DepResult result;
  AddressMap amap;
  std::vector<AnalysisFrame> frames;
  std::ptrdiff_t idx = -1;
  Part part = Part::A;
  int iteration = 0;

  // One-record lookahead: a Call record is form 2 iff the next record
  // executes inside the callee ("a Call instruction followed by its function
  // body").
  std::optional<TraceRecord> pending_call;

  Impl(PreprocessResult& p, const MclRegion& r, const DepOptions& o)
      : pre(p), region(r), opts(o) {
    result.induction.written_in_b.assign(pre.vars.size(), 0);
    frames.push_back(AnalysisFrame{"main", {}, ""});
  }

  AnalysisFrame& frame() {
    AC_CHECK(!frames.empty(), "analysis frame stack underflow");
    return frames.back();
  }

  bool is_mli(int var) const {
    return var >= 0 && static_cast<std::size_t>(var) < pre.is_mli.size() &&
           pre.is_mli[static_cast<std::size_t>(var)];
  }

  bool at_header(const TraceRecord& r) const {
    return part == Part::B && r.func == region.function && r.line == region.begin_line;
  }

  void mark_written_in_b(int var) {
    auto& w = result.induction.written_in_b;
    if (static_cast<std::size_t>(var) >= w.size()) w.resize(static_cast<std::size_t>(var) + 1, 0);
    w[static_cast<std::size_t>(var)] = 1;
  }

  void push_event(int var, std::int64_t elem, bool is_write, int line) {
    if (!is_mli(var)) return;
    AccessEvent ev;
    ev.var = var;
    ev.elem = elem;
    ev.t = static_cast<std::uint64_t>(idx);
    ev.line = line;
    ev.iteration = iteration;
    ev.part = part;
    ev.is_write = is_write;
    result.events.push_back(ev);
  }

  // --- DDG helpers ----------------------------------------------------------

  int ddg_var_node(int var) {
    const VarDef& def = pre.vars.def(var);
    const std::string label = (def.is_global() || def.func == region.function)
                                  ? def.name
                                  : def.func + "." + def.name;
    return result.complete.node(label, is_mli(var) ? NodeKind::MliVar : NodeKind::OtherVar);
  }

  int ddg_reg_node(const std::string& func, const std::string& reg) {
    return result.complete.node(func + "%" + reg, NodeKind::Register);
  }

  // --- record handlers --------------------------------------------------------

  void on_alloca(const TraceRecord& r) {
    const Operand* result_op = r.find(OperandSlot::Result);
    const Operand* size = r.input(1);
    if (!result_op || !size || !result_op->value.is_addr()) {
      throw AnalysisError("malformed Alloca record");
    }
    const auto bytes = static_cast<std::uint64_t>(size->value.as_i64());
    const int id = pre.vars.canonical(r.func, result_op->name, r.line, bytes);
    amap.bind(result_op->value.addr, bytes, id);
    if (static_cast<std::size_t>(id) >= pre.is_mli.size()) {
      pre.is_mli.resize(static_cast<std::size_t>(id) + 1, 0);
    }
  }

  void on_load(const TraceRecord& r) {
    const Operand* ptr = r.input(1);
    const Operand* result_op = r.find(OperandSlot::Result);
    if (!ptr || !result_op || !ptr->value.is_addr()) throw AnalysisError("malformed Load record");
    const auto hit = amap.resolve(ptr->value.addr);
    Prov prov;
    if (hit) {
      prov.add(hit->var, hit->elem);
      if (opts.build_ddg) {
        result.complete.add_edge(ddg_var_node(hit->var), ddg_reg_node(r.func, result_op->name));
      }
      if (at_header(r)) result.induction.cond_read.insert(hit->var);
    }
    frame().reg_prov[result_op->name] = std::move(prov);
  }

  Prov prov_of_operand(const Operand& op) {
    if (!op.is_reg || op.name.empty()) return {};
    auto it = frame().reg_prov.find(op.name);
    return it == frame().reg_prov.end() ? Prov{} : it->second;
  }

  void on_arith(const TraceRecord& r) {
    const Operand* result_op = r.find(OperandSlot::Result);
    if (!result_op) return;
    Prov merged;
    for (const auto& op : r.operands) {
      if (op.slot != OperandSlot::Input) continue;
      merged.merge(prov_of_operand(op));
      if (opts.build_ddg && op.is_reg && !op.name.empty()) {
        result.complete.add_edge(ddg_reg_node(r.func, op.name),
                                 ddg_reg_node(r.func, result_op->name));
      }
    }
    frame().reg_prov[result_op->name] = std::move(merged);
  }

  void on_store(const TraceRecord& r) {
    const Operand* value = r.input(1);
    const Operand* ptr = r.input(2);
    if (!value || !ptr || !ptr->value.is_addr()) throw AnalysisError("malformed Store record");
    ++result.stores_seen;
    const auto hit = amap.resolve(ptr->value.addr);
    if (!hit) return;

    // Pointer assignment (paper §IV-A): storing an address transfers an
    // alias, it is neither a Read nor a Write of application data.
    if (value->value.is_addr() && amap.resolve(value->value.addr)) {
      ++result.pointer_assignments;
      return;
    }

    const Prov sources = prov_of_operand(*value);
    for (const auto& [svar, selem] : sources.sources) {
      push_event(svar, selem, /*is_write=*/false, r.line);
    }
    push_event(hit->var, hit->elem, /*is_write=*/true, r.line);

    if (opts.build_ddg && value->is_reg && !value->name.empty()) {
      result.complete.add_edge(ddg_reg_node(r.func, value->name), ddg_var_node(hit->var));
    }

    if (part == Part::B) {
      mark_written_in_b(hit->var);
      if (at_header(r)) {
        for (const auto& [svar, selem] : sources.sources) {
          (void)selem;
          if (svar == hit->var) result.induction.self_rmw.insert(hit->var);
        }
      }
    }
  }

  void on_call(const TraceRecord& r, bool with_body) {
    const Operand* callee = r.find(OperandSlot::Callee);
    if (!callee) throw AnalysisError("Call record without callee");
    const Operand* result_op = r.find(OperandSlot::Result);

    if (!with_body) {
      // Form 1: treated like an arithmetic instruction — argument registers
      // feed the result; argument reads of MLI variables are data reads
      // (this is how Outcome consumption by e.g. print_float is observed).
      Prov merged;
      for (const auto& op : r.operands) {
        if (op.slot != OperandSlot::Input) continue;
        const Prov p = prov_of_operand(op);
        for (const auto& [svar, selem] : p.sources) {
          push_event(svar, selem, /*is_write=*/false, r.line);
        }
        merged.merge(p);
        if (opts.build_ddg && result_op && op.is_reg && !op.name.empty()) {
          result.complete.add_edge(ddg_reg_node(r.func, op.name),
                                   ddg_reg_node(r.func, result_op->name));
        }
      }
      if (result_op) frame().reg_prov[result_op->name] = std::move(merged);
      return;
    }

    // Form 2: bind each argument's provenance to the callee's incoming
    // registers arg1..argN (the callee's parameter-binding stores complete
    // the argument -> parameter triplet, cf. Fig. 6(b)).
    AnalysisFrame next;
    next.func = callee->name;
    next.pending_dst = result_op ? result_op->name : "";
    int arg_index = 0;
    for (const auto& op : r.operands) {
      if (op.slot != OperandSlot::Input) continue;
      ++arg_index;
      next.reg_prov[strf("arg%d", arg_index)] = prov_of_operand(op);
    }
    frames.push_back(std::move(next));
  }

  void on_ret(const TraceRecord& r) {
    Prov ret_prov;
    const Operand* value = r.input(1);
    if (value) ret_prov = prov_of_operand(*value);
    const std::string pending = frame().pending_dst;
    if (frames.size() > 1) {
      frames.pop_back();
      if (!pending.empty()) {
        if (opts.build_ddg && value && value->is_reg && !value->name.empty()) {
          // Bind the callee's return register to the caller's result register
          // so dependency chains survive function boundaries in the DDG.
          result.complete.add_edge(ddg_reg_node(r.func, value->name),
                                   ddg_reg_node(frame().func, pending));
        }
        frame().reg_prov[pending] = std::move(ret_prov);
      }
    }
  }

  void on_br(const TraceRecord& r) {
    // A conditional branch at the MCL header line delimits iterations.
    if (at_header(r) && r.input(1) != nullptr) ++iteration;
  }

  void dispatch(const TraceRecord& r) {
    ++idx;
    part = pre.partition.part_of(idx);
    switch (r.opcode) {
      case Opcode::Alloca: on_alloca(r); break;
      case Opcode::Load: on_load(r); break;
      case Opcode::Store: on_store(r); break;
      case Opcode::Call: break;  // handled by the lookahead buffer in add()
      case Opcode::Ret: on_ret(r); break;
      case Opcode::Br: on_br(r); break;
      case Opcode::GetElementPtr:
      case Opcode::BitCast:
        break;  // pointer computations: resolution is by runtime address
      default:
        if (trace::is_arithmetic(r.opcode)) on_arith(r);
        break;
    }
  }

  void add(const TraceRecord& r) {
    if (pending_call) {
      const Operand* callee = pending_call->find(OperandSlot::Callee);
      const bool with_body = callee && r.func == callee->name;
      TraceRecord call = std::move(*pending_call);
      pending_call.reset();
      dispatch_call(call, with_body);
    }
    if (r.opcode == Opcode::Call) {
      pending_call = r;
      return;
    }
    dispatch(r);
  }

  void dispatch_call(const TraceRecord& call, bool with_body) {
    ++idx;
    part = pre.partition.part_of(idx);
    on_call(call, with_body);
  }

  DepResult finish() {
    if (pending_call) {
      TraceRecord call = std::move(*pending_call);
      pending_call.reset();
      dispatch_call(call, /*with_body=*/false);
    }
    result.iterations = iteration;
    return std::move(result);
  }
};

DepAnalyzer::DepAnalyzer(PreprocessResult& pre, const MclRegion& region, const DepOptions& opts)
    : impl_(new Impl(pre, region, opts)) {}

DepAnalyzer::~DepAnalyzer() = default;

void DepAnalyzer::add(const trace::TraceRecord& rec) { impl_->add(rec); }

DepResult DepAnalyzer::finish() { return impl_->finish(); }

DepResult dep_analysis(const std::vector<TraceRecord>& records, PreprocessResult& pre,
                       const MclRegion& region, const DepOptions& opts) {
  DepAnalyzer analyzer(pre, region, opts);
  for (const TraceRecord& rec : records) analyzer.add(rec);
  return analyzer.finish();
}

}  // namespace ac::analysis
