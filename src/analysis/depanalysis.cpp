#include "analysis/depanalysis.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace ac::analysis {

using trace::Opcode;
using trace::OperandSlot;
using trace::PackedOperand;
using trace::PackedRecord;
using trace::SymbolPool;
using trace::TraceBuffer;
using trace::TraceRecord;

namespace {

/// Immediate variable provenance of a register: the set of (var, element)
/// sources whose values flow into it (the reg-var map of §IV-B, with the
/// reg-reg map folded in by unioning across arithmetic instructions).
struct Prov {
  std::vector<std::pair<int, std::int64_t>> sources;

  void add(int var, std::int64_t elem) {
    for (const auto& s : sources) {
      if (s.first == var && s.second == elem) return;
    }
    // Reductions keep provenance small by SSA re-loading; the cap only guards
    // pathological chains.
    if (sources.size() < 64) sources.emplace_back(var, elem);
  }
  void merge(const Prov& other) {
    for (const auto& s : other.sources) add(s.first, s.second);
  }
};

/// Registers are their pool ids: hashing an u32 instead of a register-name
/// string is the single biggest win of the interned replay.
struct AnalysisFrame {
  std::uint32_t func = SymbolPool::npos;
  std::unordered_map<std::uint32_t, Prov> reg_prov;
  std::uint32_t pending_dst = SymbolPool::npos;  // caller register awaiting Ret
};

}  // namespace

struct DepAnalyzer::Impl {
  PreprocessResult& pre;
  MclRegion region;
  DepOptions opts;

  // Name resolution (see MliCollector::Impl): batch binds the buffer's pool,
  // streaming interns into its own.
  const SymbolPool* pool = nullptr;
  SymbolPool owned_pool;
  bool streaming = false;
  std::uint32_t region_func_id = SymbolPool::npos;
  std::vector<PackedRecord> scratch_rec;
  std::vector<PackedOperand> scratch_ops;

  DepResult result;
  AddressMap amap;
  std::vector<AnalysisFrame> frames;
  std::ptrdiff_t idx = -1;
  Part part = Part::A;
  int iteration = 0;

  // One-record lookahead: a Call record is form 2 iff the next record
  // executes inside the callee ("a Call instruction followed by its function
  // body"). The pending record is copied (streaming scratch is overwritten).
  bool have_pending_call = false;
  PackedRecord pending_rec;
  std::vector<PackedOperand> pending_ops;

  // Alloca-site canonical-id cache (shared implementation with pre-processing).
  AllocaSiteCache alloca_ids;
  // "argN" binding registers, indexed by N-1.
  std::vector<std::uint32_t> arg_ids;
  // DDG node caches: labels are a pure function of the ids, so node ids are
  // resolved without rebuilding label strings per record.
  std::unordered_map<int, int> var_nodes;                    // var id -> node
  std::unordered_map<std::uint64_t, int> reg_nodes;          // func<<32|reg -> node

  Impl(PreprocessResult& p, const MclRegion& r, const DepOptions& o)
      : pre(p), region(r), opts(o) {
    result.induction.written_in_b.assign(pre.vars.size(), 0);
  }

  void bind_streaming() {
    streaming = true;
    pool = &owned_pool;
    region_func_id = owned_pool.intern(region.function);
    frames.push_back(AnalysisFrame{owned_pool.intern("main"), {}, SymbolPool::npos});
  }
  void bind_buffer(const TraceBuffer& buf) {
    pool = &buf.pool();
    region_func_id = pool->lookup(region.function);
    frames.push_back(AnalysisFrame{pool->lookup("main"), {}, SymbolPool::npos});
  }

  AnalysisFrame& frame() {
    AC_CHECK(!frames.empty(), "analysis frame stack underflow");
    return frames.back();
  }

  bool is_mli(int var) const {
    return var >= 0 && static_cast<std::size_t>(var) < pre.is_mli.size() &&
           pre.is_mli[static_cast<std::size_t>(var)];
  }

  bool at_header(const PackedRecord& r) const {
    return part == Part::B && r.func == region_func_id && r.line == region.begin_line;
  }

  void mark_written_in_b(int var) {
    auto& w = result.induction.written_in_b;
    if (static_cast<std::size_t>(var) >= w.size()) w.resize(static_cast<std::size_t>(var) + 1, 0);
    w[static_cast<std::size_t>(var)] = 1;
  }

  void push_event(int var, std::int64_t elem, bool is_write, int line) {
    if (!is_mli(var)) return;
    AccessEvent ev;
    ev.var = var;
    ev.elem = elem;
    ev.t = static_cast<std::uint64_t>(idx);
    ev.line = line;
    ev.iteration = iteration;
    ev.part = part;
    ev.is_write = is_write;
    result.events.push_back(ev);
  }

  int canonical_var(std::uint32_t func, std::uint32_t name, int line, std::uint64_t bytes) {
    return alloca_ids.canonical(pre.vars, *pool, func, name, line, bytes);
  }

  // --- DDG helpers ----------------------------------------------------------

  int ddg_var_node(int var) {
    const auto it = var_nodes.find(var);
    if (it != var_nodes.end()) return it->second;
    const VarDef& def = pre.vars.def(var);
    const std::string label = (def.is_global() || def.func == region.function)
                                  ? def.name
                                  : def.func + "." + def.name;
    const int node = result.complete.node(label, is_mli(var) ? NodeKind::MliVar : NodeKind::OtherVar);
    var_nodes.emplace(var, node);
    return node;
  }

  std::string_view func_label(std::uint32_t func) const {
    // The bottom frame is labeled "main" whether or not the trace contains a
    // function of that name (legacy behavior); every other id resolves
    // through the pool.
    return func == SymbolPool::absent ? std::string_view("main") : pool->view(func);
  }

  int ddg_reg_node(std::uint32_t func, std::uint32_t reg) {
    const std::uint64_t key = (static_cast<std::uint64_t>(func) << 32) | reg;
    const auto it = reg_nodes.find(key);
    if (it != reg_nodes.end()) return it->second;
    const std::string label =
        std::string(func_label(func)) + "%" + std::string(pool->view(reg));
    const int node = result.complete.node(label, NodeKind::Register);
    reg_nodes.emplace(key, node);
    return node;
  }

  // --- record handlers --------------------------------------------------------

  void on_alloca(const PackedRecord& r, const PackedOperand* ops) {
    const PackedOperand* result_op = trace::find_operand(r, ops, OperandSlot::Result);
    const PackedOperand* size = trace::find_input(r, ops, 1);
    if (!result_op || !size || !result_op->is_addr()) {
      throw AnalysisError("malformed Alloca record");
    }
    const auto bytes = static_cast<std::uint64_t>(size->as_i64());
    const int id = canonical_var(r.func, result_op->name, r.line, bytes);
    amap.bind(result_op->addr(), bytes, id);
    if (static_cast<std::size_t>(id) >= pre.is_mli.size()) {
      pre.is_mli.resize(static_cast<std::size_t>(id) + 1, 0);
    }
  }

  void on_load(const PackedRecord& r, const PackedOperand* ops) {
    const PackedOperand* ptr = trace::find_input(r, ops, 1);
    const PackedOperand* result_op = trace::find_operand(r, ops, OperandSlot::Result);
    if (!ptr || !result_op || !ptr->is_addr()) throw AnalysisError("malformed Load record");
    const auto hit = amap.resolve(ptr->addr());
    Prov prov;
    if (hit) {
      prov.add(hit->var, hit->elem);
      if (opts.build_ddg) {
        result.complete.add_edge(ddg_var_node(hit->var), ddg_reg_node(r.func, result_op->name));
      }
      if (at_header(r)) result.induction.cond_read.insert(hit->var);
    }
    frame().reg_prov[result_op->name] = std::move(prov);
  }

  Prov prov_of_operand(const PackedOperand& op) {
    if (!op.is_reg() || op.name == SymbolPool::npos) return {};
    auto it = frame().reg_prov.find(op.name);
    return it == frame().reg_prov.end() ? Prov{} : it->second;
  }

  void on_arith(const PackedRecord& r, const PackedOperand* ops) {
    const PackedOperand* result_op = trace::find_operand(r, ops, OperandSlot::Result);
    if (!result_op) return;
    Prov merged;
    for (std::uint32_t i = 0; i < r.op_count; ++i) {
      const PackedOperand& op = ops[i];
      if (op.slot() != OperandSlot::Input) continue;
      merged.merge(prov_of_operand(op));
      if (opts.build_ddg && op.is_reg() && op.name != SymbolPool::npos) {
        result.complete.add_edge(ddg_reg_node(r.func, op.name),
                                 ddg_reg_node(r.func, result_op->name));
      }
    }
    frame().reg_prov[result_op->name] = std::move(merged);
  }

  void on_store(const PackedRecord& r, const PackedOperand* ops) {
    const PackedOperand* value = trace::find_input(r, ops, 1);
    const PackedOperand* ptr = trace::find_input(r, ops, 2);
    if (!value || !ptr || !ptr->is_addr()) throw AnalysisError("malformed Store record");
    ++result.stores_seen;
    const auto hit = amap.resolve(ptr->addr());
    if (!hit) return;

    // Pointer assignment (paper §IV-A): storing an address transfers an
    // alias, it is neither a Read nor a Write of application data.
    if (value->is_addr() && amap.resolve(value->addr())) {
      ++result.pointer_assignments;
      return;
    }

    const Prov sources = prov_of_operand(*value);
    for (const auto& [svar, selem] : sources.sources) {
      push_event(svar, selem, /*is_write=*/false, r.line);
    }
    push_event(hit->var, hit->elem, /*is_write=*/true, r.line);

    if (opts.build_ddg && value->is_reg() && value->name != SymbolPool::npos) {
      result.complete.add_edge(ddg_reg_node(r.func, value->name), ddg_var_node(hit->var));
    }

    if (part == Part::B) {
      mark_written_in_b(hit->var);
      if (at_header(r)) {
        for (const auto& [svar, selem] : sources.sources) {
          (void)selem;
          if (svar == hit->var) result.induction.self_rmw.insert(hit->var);
        }
      }
    }
  }

  std::uint32_t arg_id(int n) {
    while (static_cast<int>(arg_ids.size()) < n) {
      const std::string name = strf("arg%zu", arg_ids.size() + 1);
      arg_ids.push_back(streaming ? owned_pool.intern(name) : pool->find(name));
    }
    return arg_ids[static_cast<std::size_t>(n - 1)];
  }

  void on_call(const PackedRecord& r, const PackedOperand* ops, bool with_body) {
    const PackedOperand* callee = trace::find_operand(r, ops, OperandSlot::Callee);
    if (!callee) throw AnalysisError("Call record without callee");
    const PackedOperand* result_op = trace::find_operand(r, ops, OperandSlot::Result);

    if (!with_body) {
      // Form 1: treated like an arithmetic instruction — argument registers
      // feed the result; argument reads of MLI variables are data reads
      // (this is how Outcome consumption by e.g. print_float is observed).
      Prov merged;
      for (std::uint32_t i = 0; i < r.op_count; ++i) {
        const PackedOperand& op = ops[i];
        if (op.slot() != OperandSlot::Input) continue;
        const Prov p = prov_of_operand(op);
        for (const auto& [svar, selem] : p.sources) {
          push_event(svar, selem, /*is_write=*/false, r.line);
        }
        merged.merge(p);
        if (opts.build_ddg && result_op && op.is_reg() && op.name != SymbolPool::npos) {
          result.complete.add_edge(ddg_reg_node(r.func, op.name),
                                   ddg_reg_node(r.func, result_op->name));
        }
      }
      if (result_op) frame().reg_prov[result_op->name] = std::move(merged);
      return;
    }

    // Form 2: bind each argument's provenance to the callee's incoming
    // registers arg1..argN (the callee's parameter-binding stores complete
    // the argument -> parameter triplet, cf. Fig. 6(b)).
    AnalysisFrame next;
    next.func = callee->name;
    next.pending_dst = result_op ? result_op->name : SymbolPool::npos;
    int arg_index = 0;
    for (std::uint32_t i = 0; i < r.op_count; ++i) {
      const PackedOperand& op = ops[i];
      if (op.slot() != OperandSlot::Input) continue;
      ++arg_index;
      const std::uint32_t binding = arg_id(arg_index);
      // An absent "argN" symbol means no record anywhere references it — the
      // binding would be dead, so skip it rather than key on a sentinel.
      if (binding != SymbolPool::npos) next.reg_prov[binding] = prov_of_operand(op);
    }
    frames.push_back(std::move(next));
  }

  void on_ret(const PackedRecord& r, const PackedOperand* ops) {
    Prov ret_prov;
    const PackedOperand* value = trace::find_input(r, ops, 1);
    if (value) ret_prov = prov_of_operand(*value);
    const std::uint32_t pending = frame().pending_dst;
    if (frames.size() > 1) {
      frames.pop_back();
      if (pending != SymbolPool::npos) {
        if (opts.build_ddg && value && value->is_reg() && value->name != SymbolPool::npos) {
          // Bind the callee's return register to the caller's result register
          // so dependency chains survive function boundaries in the DDG.
          result.complete.add_edge(ddg_reg_node(r.func, value->name),
                                   ddg_reg_node(frame().func, pending));
        }
        frame().reg_prov[pending] = std::move(ret_prov);
      }
    }
  }

  void on_br(const PackedRecord& r, const PackedOperand* ops) {
    // A conditional branch at the MCL header line delimits iterations.
    if (at_header(r) && trace::find_input(r, ops, 1) != nullptr) ++iteration;
  }

  void dispatch(const PackedRecord& r, const PackedOperand* ops) {
    ++idx;
    part = pre.partition.part_of(idx);
    switch (r.opcode) {
      case Opcode::Alloca: on_alloca(r, ops); break;
      case Opcode::Load: on_load(r, ops); break;
      case Opcode::Store: on_store(r, ops); break;
      case Opcode::Call: break;  // handled by the lookahead buffer in add()
      case Opcode::Ret: on_ret(r, ops); break;
      case Opcode::Br: on_br(r, ops); break;
      case Opcode::GetElementPtr:
      case Opcode::BitCast:
        break;  // pointer computations: resolution is by runtime address
      default:
        if (trace::is_arithmetic(r.opcode)) on_arith(r, ops);
        break;
    }
  }

  void add_packed(const PackedRecord& r, const PackedOperand* ops) {
    if (have_pending_call) {
      const PackedOperand* callee = trace::find_operand(pending_rec, pending_ops.data(), OperandSlot::Callee);
      const bool with_body = callee && r.func == callee->name;
      have_pending_call = false;
      dispatch_call(pending_rec, pending_ops.data(), with_body);
    }
    if (r.opcode == Opcode::Call) {
      pending_rec = r;
      pending_ops.assign(ops, ops + r.op_count);
      have_pending_call = true;
      return;
    }
    dispatch(r, ops);
  }

  void add(const TraceRecord& rec) {
    scratch_rec.clear();
    scratch_ops.clear();
    trace::pack_record(rec, owned_pool, scratch_rec, scratch_ops);
    add_packed(scratch_rec[0], scratch_ops.data());
  }

  void dispatch_call(const PackedRecord& call, const PackedOperand* ops, bool with_body) {
    ++idx;
    part = pre.partition.part_of(idx);
    on_call(call, ops, with_body);
  }

  DepResult finish() {
    if (have_pending_call) {
      have_pending_call = false;
      dispatch_call(pending_rec, pending_ops.data(), /*with_body=*/false);
    }
    result.iterations = iteration;
    return std::move(result);
  }
};

DepAnalyzer::DepAnalyzer(PreprocessResult& pre, const MclRegion& region, const DepOptions& opts)
    : impl_(new Impl(pre, region, opts)) {
  impl_->bind_streaming();
}

DepAnalyzer::~DepAnalyzer() = default;

void DepAnalyzer::add(const trace::TraceRecord& rec) { impl_->add(rec); }

DepResult DepAnalyzer::finish() { return impl_->finish(); }

DepResult dep_analysis(const TraceBuffer& buf, PreprocessResult& pre, const MclRegion& region,
                       const DepOptions& opts) {
  DepAnalyzer::Impl impl(pre, region, opts);
  impl.bind_buffer(buf);
  const PackedOperand* ops = buf.operands().data();
  for (const PackedRecord& rec : buf.records()) impl.add_packed(rec, ops + rec.op_offset);
  return impl.finish();
}

DepResult dep_analysis(const std::vector<TraceRecord>& records, PreprocessResult& pre,
                       const MclRegion& region, const DepOptions& opts) {
  DepAnalyzer analyzer(pre, region, opts);
  for (const TraceRecord& rec : records) analyzer.add(rec);
  return analyzer.finish();
}

}  // namespace ac::analysis
