#include "analysis/autocheck.hpp"

#include "analysis/session.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace ac::analysis {

std::vector<std::string> Report::critical_names() const {
  std::vector<std::string> out;
  for (const auto& cv : verdicts.critical) out.push_back(cv.name);
  return out;
}

const CriticalVar* Report::find_critical(const std::string& name) const {
  for (const auto& cv : verdicts.critical) {
    if (cv.name == name) return &cv;
  }
  return nullptr;
}

std::string Report::render() const {
  std::string out;
  out += strf("MCL region: %s lines %d-%d, %d iterations observed\n", region.function.c_str(),
              region.begin_line, region.end_line, dep.iterations);
  out += "MLI variables:";
  for (const auto& m : pre.mli) out += " " + m.name;
  out += "\nCritical variables:\n";
  for (const auto& cv : verdicts.critical) {
    out += strf("  %-24s %-8s (decl line %d, %llu bytes)\n", cv.name.c_str(),
                dep_type_name(cv.type), cv.decl_line,
                static_cast<unsigned long long>(cv.bytes));
    if (!cv.reason.empty()) out += strf("    why: %s\n", cv.reason.c_str());
  }
  out += strf("Timings: pre-processing %.4fs, dependency analysis %.4fs, identify %.4fs\n",
              timings.preprocessing, timings.dep_analysis, timings.identify);
  return out;
}

std::string Report::to_json(bool with_timings) const {
  // Emitted through the shared JsonWriter: unlike the emitter this replaces,
  // every symbol name and reason string gets full json_escape() treatment
  // (control characters included, not just quote/backslash).
  std::string out;
  JsonWriter w(&out);
  w.begin_object();

  w.key("region").begin_object();
  w.field("function", region.function);
  w.field("begin_line", region.begin_line);
  w.field("end_line", region.end_line);
  w.end_object();

  w.key("mli").begin_array();
  for (const auto& m : pre.mli) w.value(m.name);
  w.end_array();

  w.key("critical").begin_array();
  for (const CriticalVar& cv : verdicts.critical) {
    w.begin_object();
    w.field("name", cv.name);
    w.field("type", dep_type_name(cv.type));
    w.field("decl_line", cv.decl_line);
    w.field("bytes", cv.bytes);
    w.field("reason", cv.reason);
    w.end_object();
  }
  w.end_array();

  w.key("stats").begin_object();
  w.field("records", pre.records_scanned);
  w.field("iterations", dep.iterations);
  w.field("stores", dep.stores_seen);
  w.field("pointer_assignments", dep.pointer_assignments);
  w.field("events", static_cast<std::uint64_t>(dep.events.size()));
  w.end_object();

  if (with_timings) {
    // Keep the historical fixed-point "%.6f" second format for timings.
    w.key("timings").begin_object();
    w.raw_field("preprocessing", strf("%.6f", timings.preprocessing));
    w.raw_field("dep_analysis", strf("%.6f", timings.dep_analysis));
    w.raw_field("identify", strf("%.6f", timings.identify));
    w.raw_field("total", strf("%.6f", timings.total()));
    w.end_object();
  }

  w.end_object();
  out += '\n';
  return out;
}

std::string Report::render_events(std::size_t max_events) const {
  std::string out;
  std::size_t n = 0;
  for (const auto& ev : dep.events) {
    if (n >= max_events) {
      out += "...";
      break;
    }
    const VarDef& def = pre.vars.def(ev.var);
    out += strf("%zu: %s-%s; ", n + 1, def.name.c_str(), ev.is_write ? "Write" : "Read");
    ++n;
  }
  return out;
}

// The legacy facade, as thin wrappers over the Session pipeline (no behavior
// change: same phases, same timing attribution, same verdicts).

Report analyze_records(const std::vector<trace::TraceRecord>& records, const MclRegion& region,
                       const AutoCheckOptions& opts) {
  return Session().records(records).region(region).options(opts).run();
}

Report analyze_file(const std::string& path, const MclRegion& region,
                    const AutoCheckOptions& opts) {
  return Session().file(path).region(region).options(opts).run();
}

}  // namespace ac::analysis
