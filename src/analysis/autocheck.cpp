#include "analysis/autocheck.hpp"

#include "analysis/session.hpp"
#include "support/strings.hpp"

namespace ac::analysis {

std::vector<std::string> Report::critical_names() const {
  std::vector<std::string> out;
  for (const auto& cv : verdicts.critical) out.push_back(cv.name);
  return out;
}

const CriticalVar* Report::find_critical(const std::string& name) const {
  for (const auto& cv : verdicts.critical) {
    if (cv.name == name) return &cv;
  }
  return nullptr;
}

std::string Report::render() const {
  std::string out;
  out += strf("MCL region: %s lines %d-%d, %d iterations observed\n", region.function.c_str(),
              region.begin_line, region.end_line, dep.iterations);
  out += "MLI variables:";
  for (const auto& m : pre.mli) out += " " + m.name;
  out += "\nCritical variables:\n";
  for (const auto& cv : verdicts.critical) {
    out += strf("  %-24s %-8s (decl line %d, %llu bytes)\n", cv.name.c_str(),
                dep_type_name(cv.type), cv.decl_line,
                static_cast<unsigned long long>(cv.bytes));
    if (!cv.reason.empty()) out += strf("    why: %s\n", cv.reason.c_str());
  }
  out += strf("Timings: pre-processing %.4fs, dependency analysis %.4fs, identify %.4fs\n",
              timings.preprocessing, timings.dep_analysis, timings.identify);
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string Report::to_json() const {
  std::string out = "{\n";
  out += strf("  \"region\": {\"function\": \"%s\", \"begin_line\": %d, \"end_line\": %d},\n",
              json_escape(region.function).c_str(), region.begin_line, region.end_line);

  out += "  \"mli\": [";
  for (std::size_t i = 0; i < pre.mli.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + json_escape(pre.mli[i].name) + "\"";
  }
  out += "],\n";

  out += "  \"critical\": [\n";
  for (std::size_t i = 0; i < verdicts.critical.size(); ++i) {
    const CriticalVar& cv = verdicts.critical[i];
    out += strf("    {\"name\": \"%s\", \"type\": \"%s\", \"decl_line\": %d, "
                "\"bytes\": %llu, \"reason\": \"%s\"}%s\n",
                json_escape(cv.name).c_str(), dep_type_name(cv.type), cv.decl_line,
                static_cast<unsigned long long>(cv.bytes), json_escape(cv.reason).c_str(),
                i + 1 < verdicts.critical.size() ? "," : "");
  }
  out += "  ],\n";

  out += strf("  \"stats\": {\"records\": %llu, \"iterations\": %d, \"stores\": %llu, "
              "\"pointer_assignments\": %llu, \"events\": %zu},\n",
              static_cast<unsigned long long>(pre.records_scanned), dep.iterations,
              static_cast<unsigned long long>(dep.stores_seen),
              static_cast<unsigned long long>(dep.pointer_assignments), dep.events.size());

  out += strf("  \"timings\": {\"preprocessing\": %.6f, \"dep_analysis\": %.6f, "
              "\"identify\": %.6f, \"total\": %.6f}\n",
              timings.preprocessing, timings.dep_analysis, timings.identify, timings.total());
  out += "}\n";
  return out;
}

std::string Report::render_events(std::size_t max_events) const {
  std::string out;
  std::size_t n = 0;
  for (const auto& ev : dep.events) {
    if (n >= max_events) {
      out += "...";
      break;
    }
    const VarDef& def = pre.vars.def(ev.var);
    out += strf("%zu: %s-%s; ", n + 1, def.name.c_str(), ev.is_write ? "Write" : "Read");
    ++n;
  }
  return out;
}

// The legacy facade, as thin wrappers over the Session pipeline (no behavior
// change: same phases, same timing attribution, same verdicts).

Report analyze_records(const std::vector<trace::TraceRecord>& records, const MclRegion& region,
                       const AutoCheckOptions& opts) {
  return Session().records(records).region(region).options(opts).run();
}

Report analyze_file(const std::string& path, const MclRegion& region,
                    const AutoCheckOptions& opts) {
  return Session().file(path).region(region).options(opts).run();
}

}  // namespace ac::analysis
