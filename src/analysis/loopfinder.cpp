#include "analysis/loopfinder.hpp"

#include <algorithm>
#include <map>

#include "support/strings.hpp"

namespace ac::analysis {

std::vector<LoopCandidate> suggest_loops(const std::vector<trace::TraceRecord>& records,
                                         std::size_t top_n) {
  struct Stats {
    int evaluations = 0;
    std::uint64_t first = 0;
    std::uint64_t last = 0;
  };
  std::map<std::pair<std::string, int>, Stats> headers;

  for (std::size_t i = 0; i < records.size(); ++i) {
    const trace::TraceRecord& r = records[i];
    // A loop header evaluation is a conditional branch (paper: the `for`
    // statement's condition); unconditional back-edges are not headers.
    if (r.opcode != trace::Opcode::Br || r.input(1) == nullptr) continue;
    auto [it, inserted] = headers.try_emplace({r.func, r.line});
    Stats& st = it->second;
    if (inserted) st.first = i;
    st.last = i;
    ++st.evaluations;
  }

  std::vector<LoopCandidate> out;
  for (const auto& [key, st] : headers) {
    if (st.evaluations < 2) continue;  // an `if`, not a loop
    LoopCandidate c;
    c.function = key.first;
    c.header_line = key.second;
    c.evaluations = st.evaluations;
    c.span = st.last - st.first;
    c.coverage = records.empty() ? 0.0 : static_cast<double>(c.span) / records.size();
    // Estimated body end: the last host-function line executed inside the
    // loop's dynamic span at or after the header.
    int end_line = key.second;
    for (std::uint64_t i = st.first; i <= st.last; ++i) {
      const trace::TraceRecord& r = records[static_cast<std::size_t>(i)];
      if (r.func == c.function && r.opcode != trace::Opcode::Alloca && r.line > end_line) {
        end_line = r.line;
      }
    }
    c.end_line = end_line;
    out.push_back(c);
  }

  std::sort(out.begin(), out.end(), [](const LoopCandidate& a, const LoopCandidate& b) {
    if (a.span != b.span) return a.span > b.span;
    if (a.evaluations != b.evaluations) return a.evaluations > b.evaluations;
    return std::tie(a.function, a.header_line) < std::tie(b.function, b.header_line);
  });
  if (top_n > 0 && out.size() > top_n) out.resize(top_n);
  return out;
}

std::vector<LoopCandidate> suggest_loops(const trace::TraceBuffer& buf, std::size_t top_n) {
  struct Stats {
    int evaluations = 0;
    std::uint64_t first = 0;
    std::uint64_t last = 0;
  };
  // Keyed by (func pool id, line); names resolve once per candidate below.
  std::map<std::pair<std::uint32_t, int>, Stats> headers;

  const auto& records = buf.records();
  const trace::PackedOperand* ops = buf.operands().data();
  auto has_input1 = [&](const trace::PackedRecord& r) {
    for (std::uint32_t i = 0; i < r.op_count; ++i) {
      const trace::PackedOperand& op = ops[r.op_offset + i];
      if (op.slot() == trace::OperandSlot::Input && op.index == 1) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < records.size(); ++i) {
    const trace::PackedRecord& r = records[i];
    if (r.opcode != trace::Opcode::Br || !has_input1(r)) continue;
    auto [it, inserted] = headers.try_emplace({r.func, r.line});
    Stats& st = it->second;
    if (inserted) st.first = i;
    st.last = i;
    ++st.evaluations;
  }

  std::vector<LoopCandidate> out;
  for (const auto& [key, st] : headers) {
    if (st.evaluations < 2) continue;  // an `if`, not a loop
    LoopCandidate c;
    c.function = std::string(buf.pool().view(key.first));
    c.header_line = key.second;
    c.evaluations = st.evaluations;
    c.span = st.last - st.first;
    c.coverage = records.empty() ? 0.0 : static_cast<double>(c.span) / records.size();
    int end_line = key.second;
    for (std::uint64_t i = st.first; i <= st.last; ++i) {
      const trace::PackedRecord& r = records[static_cast<std::size_t>(i)];
      if (r.func == key.first && r.opcode != trace::Opcode::Alloca && r.line > end_line) {
        end_line = r.line;
      }
    }
    c.end_line = end_line;
    out.push_back(c);
  }

  std::sort(out.begin(), out.end(), [](const LoopCandidate& a, const LoopCandidate& b) {
    if (a.span != b.span) return a.span > b.span;
    if (a.evaluations != b.evaluations) return a.evaluations > b.evaluations;
    return std::tie(a.function, a.header_line) < std::tie(b.function, b.header_line);
  });
  if (top_n > 0 && out.size() > top_n) out.resize(top_n);
  return out;
}

std::string render_suggestions(const std::vector<LoopCandidate>& candidates) {
  std::string out = "Candidate main computation loops (heaviest first):\n";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const LoopCandidate& c = candidates[i];
    out += strf("  %zu. --function %s --begin %d --end %d   "
                "(%d evaluations, %llu dynamic instructions, %.1f%% of trace)\n",
                i + 1, c.function.c_str(), c.header_line, c.end_line, c.evaluations,
                static_cast<unsigned long long>(c.span), 100.0 * c.coverage);
  }
  if (candidates.empty()) out += "  (no loops observed)\n";
  return out;
}

}  // namespace ac::analysis
