#include "analysis/session.hpp"

#include <map>
#include <thread>
#include <utility>

#include "ckpt/engine.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"

namespace ac::analysis {

// --- options ---------------------------------------------------------------

AutoCheckOptions::operator AnalysisOptions() const {
  AnalysisOptions out;
  out.mli_mode = mli_mode;
  out.build_ddg = build_ddg;
  if (parallel_read) {
    out.read_threads = read_threads > 0 ? read_threads : default_thread_count();
  } else if (read_threads > 1) {
    // The old facade silently ignored read_threads without parallel_read.
    out.read_threads = read_threads;
  }
  return out;
}

namespace {

/// The Session's classification dispatch. Both parallel variants are
/// bit-identical to classify(); they differ only in overhead shape: the
/// pipelined producer/consumer overlaps extraction with scanning but spawns
/// mailboxes and two worker groups, which small event streams never
/// amortize — there the one-sweep-per-worker barrier path is cheaper.
ClassifyResult classify_parallel(const DepResult& dep, const PreprocessResult& pre,
                                 int threads) {
  constexpr std::size_t kPipelineThreshold = std::size_t{1} << 20;
  return dep.events.size() >= kPipelineThreshold ? classify_pipelined(dep, pre, threads)
                                                 : classify_sharded(dep, pre, threads);
}

}  // namespace

int default_thread_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

// --- sinks -----------------------------------------------------------------

namespace {

void emit(const std::string& text, std::FILE* out, std::string* capture) {
  if (capture) {
    *capture += text;
  } else if (out) {
    std::fwrite(text.data(), 1, text.size(), out);
  }
}

}  // namespace

void TextSink::consume(const Report& report, const SessionContext&) {
  emit(report.render(), out_, capture_);
}

void JsonSink::consume(const Report& report, const SessionContext&) {
  emit(report.to_json(with_timings_), out_, capture_);
}

void DotSink::consume(const Report& report, const SessionContext&) {
  const std::string dot = report.contracted.to_dot();
  if (capture_) {
    *capture_ += dot;
    return;
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (!f) throw Error("cannot write " + path_);
  std::fwrite(dot.data(), 1, dot.size(), f);
  std::fclose(f);
}

void ProtectSink::consume(const Report& report, const SessionContext& ctx) {
  if (!ctx.trace) {
    throw Error("ProtectSink: needs a materialized trace to resolve arena addresses "
                "(live sources never materialize one)");
  }
  // One sweep over the packed records: the last Alloca per variable name in
  // the MCL host function (or globals) is the binding live at the loop.
  const trace::SymbolPool& pool = ctx.trace->pool();
  const std::uint32_t host_func = pool.lookup(ctx.region.function);
  const std::uint32_t global_func = pool.lookup("<global>");
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> allocas;  // name -> (addr, bytes)
  for (std::size_t i = 0; i < ctx.trace->size(); ++i) {
    const trace::RecordView rec = ctx.trace->view(i);
    if (rec.opcode() != trace::Opcode::Alloca) continue;
    if (rec.func_id() != host_func && rec.func_id() != global_func) continue;
    const auto* result = rec.find(trace::OperandSlot::Result);
    if (!result) continue;
    const auto* size = rec.input(1);
    allocas[std::string(rec.name(*result))] = {
        result->value().addr, size ? static_cast<std::uint64_t>(size->value().i) : 0};
  }
  std::string text = strf("// CheckpointEngine registration for %s (function %s, lines %d..%d)\n",
                          ctx.source_name.c_str(), ctx.region.function.c_str(),
                          ctx.region.begin_line, ctx.region.end_line);
  if (!codec_spec_.empty()) {
    text += strf("cfg.set_codecs(ac::ckpt::CodecChain::parse(\"%s\"));\n", codec_spec_.c_str());
  }
  for (const auto& cv : report.critical()) {
    const auto it = allocas.find(cv.name);
    const std::uint64_t addr = it != allocas.end() ? it->second.first : 0;
    const std::uint64_t bytes =
        it != allocas.end() && it->second.second ? it->second.second : cv.bytes;
    text += strf("engine.protect(\"%s\");  // addr 0x%llx, %llu bytes, %s\n", cv.name.c_str(),
                 static_cast<unsigned long long>(addr),
                 static_cast<unsigned long long>(bytes), dep_type_name(cv.type));
  }
  emit(text, out_, capture_);
}

void EngineSink::consume(const Report& report, const SessionContext&) {
  engine_->register_report(report);
}

// --- builder ---------------------------------------------------------------

Session& Session::source(std::shared_ptr<trace::TraceSource> src) {
  source_ = std::move(src);
  return *this;
}

Session& Session::file(const std::string& path) {
  return source(std::make_shared<trace::FileSource>(path));
}

Session& Session::buffer(trace::TraceBuffer&& buf) {
  return source(std::make_shared<trace::MemorySource>(std::move(buf)));
}

Session& Session::records(const std::vector<trace::TraceRecord>& recs) {
  return source(std::make_shared<trace::MemorySource>(recs));
}

Session& Session::records(std::vector<trace::TraceRecord>&& recs) {
  return source(std::make_shared<trace::MemorySource>(std::move(recs)));
}

Session& Session::live(trace::LiveSource::Generator gen) {
  return source(std::make_shared<trace::LiveSource>(std::move(gen)));
}

Session& Session::region(MclRegion r) {
  region_ = std::move(r);
  return *this;
}

Session& Session::region_from_markers(const std::string& source_text,
                                      const std::string& function) {
  return region(find_mcl_region(source_text, function));
}

Session& Session::options(const AnalysisOptions& opts) {
  opts_ = opts;
  return *this;
}

Session& Session::sink(std::shared_ptr<ReportSink> s) {
  sinks_.push_back(std::move(s));
  return *this;
}

// --- pipeline --------------------------------------------------------------

Report Session::run() {
  AC_CHECK(source_ != nullptr, "Session: no trace source configured");
  AC_CHECK(region_.begin_line > 0 && region_.end_line >= region_.begin_line,
           "Session: invalid MCL region (set region() or region_from_markers())");
  // Left enabled after the run so the caller can export what was recorded.
  if (opts_.telemetry) telemetry::telemetry().enable();
  AC_SPAN("analysis.session");
  source_->set_read_threads(opts_.effective_read_threads());

  Report report = source_->live() ? run_live() : run_batch();

  const SessionContext ctx{region_, source_->live() ? nullptr : &source_->buffer(),
                           source_->describe()};
  for (const auto& s : sinks_) s->consume(report, ctx);
  return report;
}

Report Session::run_batch() {
  Report report;
  report.region = region_;

  // The whole batch pipeline replays the interned span-based representation;
  // no owning TraceRecord is ever materialized.
  const trace::TraceBuffer& buf = source_->buffer();

  WallTimer timer;
  {
    AC_SPAN("analysis.preprocess");
    report.pre = preprocess(buf, region_, opts_.mli_mode);
  }
  // Trace parsing is attributed to pre-processing (it dominates, as the
  // paper observes); in-memory sources contribute zero.
  report.timings.preprocessing = source_->read_seconds() + timer.seconds();

  timer.reset();
  {
    AC_SPAN("analysis.dep");
    DepOptions dep_opts;
    dep_opts.build_ddg = opts_.build_ddg;
    report.dep = dep_analysis(buf, report.pre, region_, dep_opts);
  }
  report.timings.dep_analysis = timer.seconds();

  timer.reset();
  report.verdicts = classify_parallel(report.dep, report.pre,
                                      opts_.effective_analysis_threads());
  if (opts_.build_ddg) report.contracted = report.dep.complete.contract();
  report.timings.identify = timer.seconds();
  return report;
}

Report Session::run_live() {
  // Timing attribution is whole-pass, measured by the SessionStream itself:
  // preprocessing = pass 1 (execution + MLI), dep_analysis = pass 2,
  // identify = classification.
  SessionStream stream(region_, opts_);
  source_->for_each([&](const trace::TraceRecord& rec) { stream.pass1_add(rec); });
  stream.finish_pass1();
  source_->for_each([&](const trace::TraceRecord& rec) { stream.pass2_add(rec); });
  return stream.finish();
}

// --- push-based stream -----------------------------------------------------

SessionStream::SessionStream(const MclRegion& region, const AnalysisOptions& opts)
    : region_(region), opts_(opts), collector_(region, opts.mli_mode) {
  report_.region = region;
}

void SessionStream::pass1_add(const trace::TraceRecord& rec) {
  // Hot path: one predictable branch, no per-record timing — a pass is timed
  // from its first record to its seal, so caller idle time before/between
  // passes is not attributed to the analysis.
  if (!pass_timer_live_) {
    pass_timer_.reset();
    pass_timer_live_ = true;
  }
  collector_.add(rec);
}

void SessionStream::finish_pass1() {
  AC_CHECK(!pass1_done_, "finish_pass1 called twice");
  report_.pre = collector_.finish();
  DepOptions dep_opts;
  dep_opts.build_ddg = opts_.build_ddg;
  analyzer_ = std::make_unique<DepAnalyzer>(report_.pre, region_, dep_opts);
  // Pass 1 = first record to here: the driving execution, the MLI
  // collection, and the partition seal above.
  pass1_seconds_ = pass_timer_live_ ? pass_timer_.seconds() : 0;
  pass_timer_live_ = false;
  pass1_done_ = true;
}

void SessionStream::pass2_add(const trace::TraceRecord& rec) {
  AC_CHECK(pass1_done_, "pass2_add before finish_pass1");
  if (!pass_timer_live_) {
    pass_timer_.reset();
    pass_timer_live_ = true;
  }
  analyzer_->add(rec);
}

Report SessionStream::finish() {
  AC_CHECK(pass1_done_, "finish before finish_pass1");
  // Pass 2 = its first record to here.
  pass2_seconds_ = pass_timer_live_ ? pass_timer_.seconds() : 0;
  pass_timer_live_ = false;
  WallTimer t;
  report_.dep = analyzer_->finish();
  report_.verdicts = classify_parallel(report_.dep, report_.pre,
                                       opts_.effective_analysis_threads());
  if (opts_.build_ddg) report_.contracted = report_.dep.complete.contract();
  report_.timings.preprocessing = pass1_seconds_;
  report_.timings.dep_analysis = pass2_seconds_;
  report_.timings.identify = t.seconds();
  return std::move(report_);
}

}  // namespace ac::analysis
