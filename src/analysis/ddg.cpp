#include "analysis/ddg.hpp"

#include "support/error.hpp"

namespace ac::analysis {

int Ddg::node(const std::string& label, NodeKind kind) {
  auto [it, inserted] = index_.emplace(label, static_cast<int>(labels_.size()));
  if (inserted) {
    labels_.push_back(label);
    kinds_.push_back(kind);
  } else if (kind == NodeKind::MliVar) {
    // A node can be discovered as a register/local first and later identified
    // as MLI; MLI status wins.
    kinds_[static_cast<std::size_t>(it->second)] = kind;
  }
  return it->second;
}

void Ddg::add_edge(int parent, int child) {
  AC_CHECK(parent >= 0 && parent < num_nodes() && child >= 0 && child < num_nodes(),
           "ddg edge endpoint out of range");
  if (parent == child) return;  // self-loops carry no contraction information
  edges_.emplace(parent, child);
}

int Ddg::find(const std::string& label) const {
  auto it = index_.find(label);
  return it == index_.end() ? -1 : it->second;
}

std::vector<int> Ddg::parents(int n) const {
  std::vector<int> out;
  for (const auto& [p, c] : edges_) {
    if (c == n) out.push_back(p);
  }
  return out;
}

std::vector<int> Ddg::children(int n) const {
  std::vector<int> out;
  for (const auto& [p, c] : edges_) {
    if (p == n) out.push_back(c);
  }
  return out;
}

Ddg Ddg::contract() const {
  // Build adjacency (child -> parents) once.
  std::vector<std::vector<int>> parent_of(static_cast<std::size_t>(num_nodes()));
  for (const auto& [p, c] : edges_) parent_of[static_cast<std::size_t>(c)].push_back(p);

  Ddg out;
  std::vector<int> out_id(static_cast<std::size_t>(num_nodes()), -1);
  for (int n = 0; n < num_nodes(); ++n) {
    if (kinds_[static_cast<std::size_t>(n)] == NodeKind::MliVar) {
      out_id[static_cast<std::size_t>(n)] = out.node(labels_[static_cast<std::size_t>(n)], NodeKind::MliVar);
    }
  }

  // For each MLI vertex walk upward through non-MLI ancestors; every MLI
  // ancestor first reached through such a chain becomes a contracted parent.
  std::vector<char> visited(static_cast<std::size_t>(num_nodes()));
  for (int n = 0; n < num_nodes(); ++n) {
    if (kinds_[static_cast<std::size_t>(n)] != NodeKind::MliVar) continue;
    std::fill(visited.begin(), visited.end(), 0);
    std::vector<int> stack = parent_of[static_cast<std::size_t>(n)];
    while (!stack.empty()) {
      const int p = stack.back();
      stack.pop_back();
      if (visited[static_cast<std::size_t>(p)]) continue;
      visited[static_cast<std::size_t>(p)] = 1;
      if (kinds_[static_cast<std::size_t>(p)] == NodeKind::MliVar) {
        out.add_edge(out_id[static_cast<std::size_t>(p)], out_id[static_cast<std::size_t>(n)]);
        continue;  // stop at the first MLI vertex along the chain
      }
      for (int pp : parent_of[static_cast<std::size_t>(p)]) stack.push_back(pp);
    }
  }
  return out;
}

std::string Ddg::to_dot() const {
  std::string out = "digraph ddg {\n";
  for (int n = 0; n < num_nodes(); ++n) {
    const char* shape = "ellipse";
    const char* style = "solid";
    switch (kinds_[static_cast<std::size_t>(n)]) {
      case NodeKind::MliVar: shape = "box"; break;
      case NodeKind::OtherVar: shape = "ellipse"; break;
      case NodeKind::Register: style = "dashed"; break;
    }
    out += "  n" + std::to_string(n) + " [label=\"" + labels_[static_cast<std::size_t>(n)] +
           "\", shape=" + shape + ", style=" + style + "];\n";
  }
  for (const auto& [p, c] : edges_) {
    out += "  n" + std::to_string(p) + " -> n" + std::to_string(c) + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace ac::analysis
