#include "vm/interp.hpp"

#include <cinttypes>
#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"

namespace ac::vm {

using trace::Opcode;
using trace::Operand;
using trace::TraceRecord;

namespace {

/// Trace opcode for a Bin instruction.
Opcode bin_opcode(ir::BinOp op, bool is_float) {
  switch (op) {
    case ir::BinOp::Add: return is_float ? Opcode::FAdd : Opcode::Add;
    case ir::BinOp::Sub: return is_float ? Opcode::FSub : Opcode::Sub;
    case ir::BinOp::Mul: return is_float ? Opcode::FMul : Opcode::Mul;
    case ir::BinOp::Div: return is_float ? Opcode::FDiv : Opcode::SDiv;
    case ir::BinOp::Rem: return is_float ? Opcode::FRem : Opcode::SRem;
    default: return is_float ? Opcode::FCmp : Opcode::ICmp;
  }
}

}  // namespace

Interpreter::Interpreter(const ir::Module& module) : module_(module) {
  global_addr_.reserve(module_.globals.size());
  for (const auto& g : module_.globals) {
    global_addr_.push_back(arena_.alloc_global(static_cast<std::uint64_t>(g.bytes())));
  }
}

void Interpreter::emit(TraceRecord rec) {
  rec.dyn_id = dyn_id_++;
  ++result_.steps;
  if (result_.steps > opts_->max_steps) throw VmError("step limit exceeded (runaway program?)");
  if (opts_->sink) opts_->sink->append(rec);
}

void Interpreter::emit_global_allocas() {
  // Globals appear in the trace as Alloca records in a synthetic "<global>"
  // function so the analysis can build its address map for them (the paper's
  // FT workaround depends on globals being visible; see DESIGN.md).
  for (std::size_t i = 0; i < module_.globals.size(); ++i) {
    const ir::VarInfo& g = module_.globals[i];
    TraceRecord rec;
    rec.line = g.decl_line;
    rec.func = "<global>";
    rec.bb = strf("%d:0", g.decl_line);
    rec.opcode = Opcode::Alloca;
    rec.operands.push_back(Operand::input(1, Value::make_int(g.bytes()), false, ""));
    rec.operands.push_back(Operand::result(Value::make_addr(global_addr_[i]), g.name));
    emit(std::move(rec));
  }
}

std::uint64_t Interpreter::slot_address(const Frame& f, int slot, bool is_global) const {
  if (is_global) return global_addr_.at(static_cast<std::size_t>(slot));
  const std::uint64_t addr = f.slot_addr.at(static_cast<std::size_t>(slot));
  if (addr == 0) throw VmError("use of local before its alloca: " + f.fn->local(slot).name);
  return addr;
}

Value Interpreter::eval(const Frame& f, const ir::Opnd& o) const {
  switch (o.kind) {
    case ir::Opnd::Kind::Reg: return f.regs.at(static_cast<std::size_t>(o.reg));
    case ir::Opnd::Kind::ImmI: return Value::make_int(o.imm_i);
    case ir::Opnd::Kind::ImmF: return Value::make_float(o.imm_f);
    case ir::Opnd::Kind::Var:
      return Value::make_addr(slot_address(f, o.var_slot, o.var_is_global));
    case ir::Opnd::Kind::None: break;
  }
  throw VmError("evaluating empty operand");
}

std::string Interpreter::opnd_reg_name(const ir::Opnd& o) const {
  switch (o.kind) {
    case ir::Opnd::Kind::Reg: return strf("%d", o.reg);
    case ir::Opnd::Kind::Var: {
      const Frame& f = frames_.back();
      return o.var_is_global ? module_.global(o.var_slot).name : f.fn->local(o.var_slot).name;
    }
    default: return "";
  }
}

Operand Interpreter::opnd_to_trace(const Frame& f, const ir::Opnd& o, int index) const {
  const Value v = eval(f, o);
  const bool is_reg = o.kind == ir::Opnd::Kind::Reg || o.kind == ir::Opnd::Kind::Var;
  return Operand::input(index, v, is_reg, opnd_reg_name(o));
}

// ---------------------------------------------------------------------------
// Frame management
// ---------------------------------------------------------------------------

void Interpreter::push_frame(const ir::Function& fn, const std::vector<Value>& args,
                             const std::vector<std::string>& arg_names, int pending_dst) {
  if (frames_.size() > 512) throw VmError("call stack overflow");
  Frame fr;
  fr.fn = &fn;
  fr.slot_addr.assign(fn.locals.size(), 0);
  fr.regs.assign(static_cast<std::size_t>(fn.num_regs), Value{});
  fr.pc = 0;
  fr.stack_mark = arena_.stack_mark();
  fr.pending_dst = pending_dst;
  frames_.push_back(std::move(fr));

  // Execute the prologue allocas (codegen puts every local's Alloca first).
  Frame& f = top();
  while (f.pc < static_cast<int>(fn.instrs.size()) &&
         fn.instrs[static_cast<std::size_t>(f.pc)].kind == ir::IKind::Alloca) {
    exec_alloca(fn.instrs[static_cast<std::size_t>(f.pc)]);
    ++f.pc;
  }

  // Bind arguments: store each incoming value into its parameter slot, which
  // appears in the trace as a Store of register "arg<i>" into the parameter
  // variable — giving the analysis the argument->parameter correlation that
  // complements the Call record's triplets.
  AC_CHECK(args.size() == static_cast<std::size_t>(fn.num_params), "call arity mismatch");
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::uint64_t addr = f.slot_addr[i];
    arena_.write(addr, args[i]);
    TraceRecord rec;
    rec.line = fn.decl_line;
    rec.func = fn.name;
    rec.bb = strf("%d:0", fn.decl_line);
    rec.opcode = Opcode::Store;
    rec.operands.push_back(Operand::input(1, args[i], true, arg_names[i]));
    rec.operands.push_back(
        Operand::input(2, Value::make_addr(addr), true, fn.locals[i].name));
    emit(std::move(rec));
  }
}

void Interpreter::pop_frame(const Value* ret_value) {
  const int pending = top().pending_dst;
  arena_.release_stack(top().stack_mark);
  frames_.pop_back();
  if (!frames_.empty() && pending >= 0) {
    AC_CHECK(ret_value != nullptr, "non-void call returned no value");
    top().regs.at(static_cast<std::size_t>(pending)) = *ret_value;
  }
}

// ---------------------------------------------------------------------------
// Instruction execution
// ---------------------------------------------------------------------------

void Interpreter::exec_alloca(const ir::Instr& in) {
  Frame& f = top();
  const ir::VarInfo& v = f.fn->local(in.var_slot);
  const std::uint64_t addr = arena_.alloc_stack(static_cast<std::uint64_t>(v.bytes()));
  f.slot_addr[static_cast<std::size_t>(in.var_slot)] = addr;
  result_.peak_memory = std::max(result_.peak_memory, arena_.peak_bytes());

  TraceRecord rec;
  rec.line = in.line;
  rec.func = f.fn->name;
  rec.bb = strf("%d:0", in.line);
  rec.opcode = Opcode::Alloca;
  rec.operands.push_back(Operand::input(1, Value::make_int(v.bytes()), false, ""));
  rec.operands.push_back(Operand::result(Value::make_addr(addr), v.name));
  emit(std::move(rec));
}

void Interpreter::exec_load(const ir::Instr& in) {
  Frame& f = top();
  const Value ptr = eval(f, in.a);
  if (!ptr.is_addr()) throw VmError("load through a non-pointer value");
  const Value v = arena_.read(ptr.addr);
  f.regs.at(static_cast<std::size_t>(in.dst)) = v;

  TraceRecord rec;
  rec.line = in.line;
  rec.func = f.fn->name;
  rec.bb = strf("%d:0", in.line);
  rec.opcode = Opcode::Load;
  rec.operands.push_back(opnd_to_trace(f, in.a, 1));
  rec.operands.push_back(Operand::result(v, strf("%d", in.dst)));
  emit(std::move(rec));
}

void Interpreter::exec_store(const ir::Instr& in) {
  Frame& f = top();
  const Value v = eval(f, in.a);
  const Value ptr = eval(f, in.b);
  if (!ptr.is_addr()) throw VmError("store through a non-pointer value");
  arena_.write(ptr.addr, v);

  TraceRecord rec;
  rec.line = in.line;
  rec.func = f.fn->name;
  rec.bb = strf("%d:0", in.line);
  rec.opcode = Opcode::Store;
  rec.operands.push_back(opnd_to_trace(f, in.a, 1));
  rec.operands.push_back(opnd_to_trace(f, in.b, 2));
  emit(std::move(rec));
}

void Interpreter::exec_gep(const ir::Instr& in) {
  Frame& f = top();
  const Value base = eval(f, in.base);
  if (!base.is_addr()) throw VmError("gep on a non-pointer base");
  std::int64_t elem_offset = 0;
  std::vector<Value> idx_values;
  idx_values.reserve(in.indices.size());
  for (std::size_t i = 0; i < in.indices.size(); ++i) {
    const Value idx = eval(f, in.indices[i]);
    if (!idx.is_int()) throw VmError("non-integer array subscript");
    idx_values.push_back(idx);
    elem_offset += idx.i * in.strides[i];
  }
  const std::uint64_t addr =
      base.addr + static_cast<std::uint64_t>(elem_offset) * kCellBytes;
  f.regs.at(static_cast<std::size_t>(in.dst)) = Value::make_addr(addr);

  TraceRecord rec;
  rec.line = in.line;
  rec.func = f.fn->name;
  rec.bb = strf("%d:0", in.line);
  rec.opcode = Opcode::GetElementPtr;
  rec.operands.push_back(opnd_to_trace(f, in.base, 1));
  for (std::size_t i = 0; i < idx_values.size(); ++i) {
    rec.operands.push_back(Operand::input(static_cast<int>(i) + 2, idx_values[i],
                                          in.indices[i].kind == ir::Opnd::Kind::Reg,
                                          opnd_reg_name(in.indices[i])));
  }
  rec.operands.push_back(Operand::result(Value::make_addr(addr), strf("%d", in.dst)));
  emit(std::move(rec));
}

void Interpreter::exec_bin(const ir::Instr& in) {
  Frame& f = top();
  const Value a = eval(f, in.a);
  const Value b = eval(f, in.b);
  Value out;

  if (in.is_float) {
    const double x = a.as_f64();
    const double y = b.as_f64();
    switch (in.bin) {
      case ir::BinOp::Add: out = Value::make_float(x + y); break;
      case ir::BinOp::Sub: out = Value::make_float(x - y); break;
      case ir::BinOp::Mul: out = Value::make_float(x * y); break;
      case ir::BinOp::Div:
        if (y == 0.0) throw VmError(strf("float division by zero at line %d", in.line));
        out = Value::make_float(x / y);
        break;
      case ir::BinOp::Rem:
        if (y == 0.0) throw VmError(strf("float remainder by zero at line %d", in.line));
        out = Value::make_float(std::fmod(x, y));
        break;
      case ir::BinOp::CmpEQ: out = Value::make_int(x == y); break;
      case ir::BinOp::CmpNE: out = Value::make_int(x != y); break;
      case ir::BinOp::CmpLT: out = Value::make_int(x < y); break;
      case ir::BinOp::CmpLE: out = Value::make_int(x <= y); break;
      case ir::BinOp::CmpGT: out = Value::make_int(x > y); break;
      case ir::BinOp::CmpGE: out = Value::make_int(x >= y); break;
    }
  } else {
    if (a.is_addr() || b.is_addr()) throw VmError(strf("pointer arithmetic at line %d", in.line));
    const std::int64_t x = a.as_i64();
    const std::int64_t y = b.as_i64();
    switch (in.bin) {
      case ir::BinOp::Add: out = Value::make_int(x + y); break;
      case ir::BinOp::Sub: out = Value::make_int(x - y); break;
      case ir::BinOp::Mul: out = Value::make_int(x * y); break;
      case ir::BinOp::Div:
        if (y == 0) throw VmError(strf("integer division by zero at line %d", in.line));
        out = Value::make_int(x / y);
        break;
      case ir::BinOp::Rem:
        if (y == 0) throw VmError(strf("integer remainder by zero at line %d", in.line));
        out = Value::make_int(x % y);
        break;
      case ir::BinOp::CmpEQ: out = Value::make_int(x == y); break;
      case ir::BinOp::CmpNE: out = Value::make_int(x != y); break;
      case ir::BinOp::CmpLT: out = Value::make_int(x < y); break;
      case ir::BinOp::CmpLE: out = Value::make_int(x <= y); break;
      case ir::BinOp::CmpGT: out = Value::make_int(x > y); break;
      case ir::BinOp::CmpGE: out = Value::make_int(x >= y); break;
    }
  }
  f.regs.at(static_cast<std::size_t>(in.dst)) = out;

  TraceRecord rec;
  rec.line = in.line;
  rec.func = f.fn->name;
  rec.bb = strf("%d:0", in.line);
  rec.opcode = bin_opcode(in.bin, in.is_float);
  rec.operands.push_back(opnd_to_trace(f, in.a, 1));
  rec.operands.push_back(opnd_to_trace(f, in.b, 2));
  rec.operands.push_back(Operand::result(out, strf("%d", in.dst)));
  emit(std::move(rec));
}

void Interpreter::exec_cast(const ir::Instr& in) {
  Frame& f = top();
  const Value a = eval(f, in.a);
  Value out;
  if (in.cast == ir::CastKind::SiToFp) {
    out = Value::make_float(static_cast<double>(a.as_i64()));
  } else {
    out = Value::make_int(static_cast<std::int64_t>(a.as_f64()));
  }
  f.regs.at(static_cast<std::size_t>(in.dst)) = out;

  TraceRecord rec;
  rec.line = in.line;
  rec.func = f.fn->name;
  rec.bb = strf("%d:0", in.line);
  rec.opcode = in.cast == ir::CastKind::SiToFp ? Opcode::SIToFP : Opcode::FPToSI;
  rec.operands.push_back(opnd_to_trace(f, in.a, 1));
  rec.operands.push_back(Operand::result(out, strf("%d", in.dst)));
  emit(std::move(rec));
}

void Interpreter::exec_br(const ir::Instr& in) {
  Frame& f = top();

  if (in.kind == ir::IKind::Jmp) {
    TraceRecord rec;
    rec.line = in.line;
    rec.func = f.fn->name;
    rec.bb = strf("%d:0", in.line);
    rec.opcode = Opcode::Br;
    emit(std::move(rec));
    f.pc = in.t_true;
    return;
  }

  // Conditional branch at the MCL header line == an iteration boundary.
  const bool is_header = opts_->mcl && f.fn->name == opts_->mcl->function &&
                         in.line == opts_->mcl->begin_line;
  if (is_header) on_header_evaluation();

  const Value cond = eval(f, in.a);
  TraceRecord rec;
  rec.line = in.line;
  rec.func = f.fn->name;
  rec.bb = strf("%d:0", in.line);
  rec.opcode = Opcode::Br;
  rec.operands.push_back(opnd_to_trace(f, in.a, 1));
  emit(std::move(rec));

  const bool taken =
      cond.is_float() ? cond.f != 0.0 : (cond.is_addr() ? cond.addr != 0 : cond.i != 0);
  if (is_header && taken) ++result_.iterations_started;
  f.pc = taken ? in.t_true : in.t_false;
}

void Interpreter::exec_call(const ir::Instr& in) {
  Frame& f = top();
  std::vector<Value> args;
  std::vector<std::string> arg_names;
  args.reserve(in.args.size());
  for (const auto& a : in.args) {
    args.push_back(eval(f, a));
    arg_names.push_back(opnd_reg_name(a));
  }

  TraceRecord rec;
  rec.line = in.line;
  rec.func = f.fn->name;
  rec.bb = strf("%d:0", in.line);
  rec.opcode = Opcode::Call;
  rec.operands.push_back(Operand::callee(in.callee));
  for (std::size_t i = 0; i < args.size(); ++i) {
    rec.operands.push_back(Operand::input(static_cast<int>(i) + 1, args[i],
                                          in.args[i].kind != ir::Opnd::Kind::ImmI &&
                                              in.args[i].kind != ir::Opnd::Kind::ImmF,
                                          arg_names[i]));
  }

  if (in.is_builtin) {
    bool has_result = false;
    const Value ret = run_builtin(in.callee, args, has_result);
    if (has_result) {
      AC_CHECK(in.dst >= 0, "builtin result dropped");
      f.regs.at(static_cast<std::size_t>(in.dst)) = ret;
      rec.operands.push_back(Operand::result(ret, strf("%d", in.dst)));
    }
    emit(std::move(rec));
    return;
  }

  const ir::Function* callee = module_.find_function(in.callee);
  AC_CHECK(callee != nullptr, "call to unknown function " + in.callee);

  // Call form 2 (Fig. 6(b)): argument operands followed by parameter
  // indicator rows binding each argument value to the formal parameter name,
  // plus a result placeholder naming the destination register (see DESIGN.md).
  for (std::size_t i = 0; i < args.size(); ++i) {
    rec.operands.push_back(Operand::param(args[i], callee->locals[i].name));
  }
  if (in.dst >= 0) {
    rec.operands.push_back(Operand::result(Value::make_int(0), strf("%d", in.dst)));
  }
  emit(std::move(rec));

  // Rename arguments for the callee's binding stores: inside the callee the
  // incoming values are registers arg1..argN.
  std::vector<std::string> incoming;
  for (std::size_t i = 0; i < args.size(); ++i) incoming.push_back(strf("arg%zu", i + 1));
  push_frame(*callee, args, incoming, in.dst);
}

Value Interpreter::run_builtin(const std::string& name, const std::vector<Value>& args,
                               bool& has_result) {
  has_result = true;
  auto f1 = [&](double (*fn)(double)) { return Value::make_float(fn(args.at(0).as_f64())); };
  if (name == "sqrt") return f1(std::sqrt);
  if (name == "fabs") return f1(std::fabs);
  if (name == "exp") return f1(std::exp);
  if (name == "log") return f1(std::log);
  if (name == "sin") return f1(std::sin);
  if (name == "cos") return f1(std::cos);
  if (name == "floor") return f1(std::floor);
  if (name == "pow") return Value::make_float(std::pow(args.at(0).as_f64(), args.at(1).as_f64()));
  if (name == "timer") {
    // Deterministic monotonically increasing pseudo-time, so benchmarks that
    // accumulate timers (HPCCG's t1..t3, miniAMR's timer block) reproduce
    // bit-identical traces on every run.
    timer_counter_ += 0.001;
    return Value::make_float(timer_counter_);
  }
  if (name == "print_int") {
    result_.output += strf("%" PRId64 "\n", args.at(0).as_i64());
    has_result = false;
    return Value{};
  }
  if (name == "print_float") {
    result_.output += strf("%.6f\n", args.at(0).as_f64());
    has_result = false;
    return Value{};
  }
  throw VmError("unknown builtin: " + name);
}

void Interpreter::exec_ret(const ir::Instr& in) {
  Frame& f = top();
  TraceRecord rec;
  rec.line = in.line;
  rec.func = f.fn->name;
  rec.bb = strf("%d:0", in.line);
  rec.opcode = Opcode::Ret;

  if (!in.a.is_none()) {
    const Value v = eval(f, in.a);
    rec.operands.push_back(opnd_to_trace(f, in.a, 1));
    emit(std::move(rec));
    if (frames_.size() == 1) result_.exit_code = v.as_i64();
    pop_frame(&v);
  } else {
    emit(std::move(rec));
    pop_frame(nullptr);
  }
}

void Interpreter::exec_instr(const ir::Instr& in) {
  switch (in.kind) {
    case ir::IKind::Alloca: exec_alloca(in); break;
    case ir::IKind::Load: exec_load(in); break;
    case ir::IKind::Store: exec_store(in); break;
    case ir::IKind::Gep: exec_gep(in); break;
    case ir::IKind::Bin: exec_bin(in); break;
    case ir::IKind::Cast: exec_cast(in); break;
    case ir::IKind::Br:
    case ir::IKind::Jmp: exec_br(in); break;
    case ir::IKind::Call: exec_call(in); break;
    case ir::IKind::Ret: exec_ret(in); break;
  }
}

// ---------------------------------------------------------------------------
// MCL instrumentation
// ---------------------------------------------------------------------------

std::vector<ckpt::ProtectedRegion>
Interpreter::resolve_protected(const std::vector<std::string>& names) const {
  // Resolution scope: the MCL host function's live frame, then globals —
  // the same scope in which the paper inserts FTI_Protect calls.
  const Frame& f = frames_.back();
  std::vector<ckpt::ProtectedRegion> out;
  for (const auto& name : names) {
    bool found = false;
    for (std::size_t slot = 0; slot < f.fn->locals.size(); ++slot) {
      if (f.fn->locals[slot].name == name) {
        out.push_back({name, f.slot_addr[slot],
                       static_cast<std::uint64_t>(f.fn->locals[slot].bytes())});
        found = true;
        break;
      }
    }
    if (!found) {
      for (std::size_t g = 0; g < module_.globals.size(); ++g) {
        if (module_.globals[g].name == name) {
          out.push_back({name, global_addr_[g],
                         static_cast<std::uint64_t>(module_.globals[g].bytes())});
          found = true;
          break;
        }
      }
    }
    if (!found) throw CheckpointError("cannot resolve protected variable: " + name);
  }
  return out;
}

ckpt::CheckpointImage Interpreter::snapshot(const std::vector<std::string>& names) const {
  return ckpt::snapshot_regions(arena_, resolve_protected(names));
}

void Interpreter::apply_restore(const ckpt::CheckpointImage& img) {
  for (const auto& snap : img.vars()) {
    const ckpt::ProtectedRegion region = resolve_protected({snap.name}).front();
    if (snap.cells.size() * kCellBytes != region.bytes) {
      throw CheckpointError("size mismatch restoring variable: " + snap.name);
    }
    for (std::size_t i = 0; i < snap.cells.size(); ++i) {
      arena_.write_raw(region.addr + i * kCellBytes,
                       Arena::RawCell{snap.cells[i].payload,
                                      static_cast<ValueKind>(snap.cells[i].kind)});
    }
  }
}

ckpt::MachineState Interpreter::machine_state() const {
  ckpt::MachineState st;
  st.arena_bytes = arena_.bytes_in_use();
  st.num_frames = frames_.size();
  for (const auto& f : frames_) {
    st.total_regs += f.regs.size();
    st.total_slots += f.slot_addr.size();
  }
  return st;
}

void Interpreter::on_header_evaluation() {
  // Restore normally fires before the condition loads (see run()); this is
  // the fallback for degenerate headers without loads.
  if (opts_->restore && !restored_) {
    apply_restore(*opts_->restore);
    restored_ = true;
    ++iteration_;
    return;
  }

  ++iteration_;
  const bool completed_an_iteration = iteration_ >= 2;

  if (completed_an_iteration && opts_->on_machine_state) {
    opts_->on_machine_state(machine_state());
  }
  const int interval = std::max(1, opts_->checkpoint_interval);
  const bool interval_due = (iteration_ - 1) % interval == 0;
  if (completed_an_iteration && interval_due && opts_->on_checkpoint &&
      !opts_->protect.empty()) {
    ckpt::CheckpointImage img = snapshot(opts_->protect);
    img.set_iteration(iteration_ - 1);
    opts_->on_checkpoint(img);
  }
  if (completed_an_iteration && opts_->engine) {
    if (!engine_regions_bound_) {
      engine_regions_ = resolve_protected(opts_->engine->protected_names());
      engine_regions_bound_ = true;
    }
    opts_->engine->on_iteration(iteration_ - 1, arena_, engine_regions_);
  }
  if (opts_->fail_at_iteration > 0 && iteration_ == opts_->fail_at_iteration) {
    throw FailStop{iteration_};
  }
}

// ---------------------------------------------------------------------------
// Top-level run loop
// ---------------------------------------------------------------------------

RunResult Interpreter::run(const RunOptions& opts) {
  // One coarse span per run plus a bulk instruction-counter update at the
  // end — the dispatch loop itself stays free of instrumentation.
  AC_SPAN("vm.run");
  opts_ = &opts;
  result_ = RunResult{};
  const ir::Function* main_fn = module_.find_function("main");
  if (!main_fn) throw VmError("module has no main()");
  if (main_fn->num_params != 0) throw VmError("main() must take no parameters");

  emit_global_allocas();
  push_frame(*main_fn, {}, {}, -1);

  try {
    while (!frames_.empty()) {
      Frame& f = top();
      AC_CHECK(f.pc >= 0 && f.pc < static_cast<int>(f.fn->instrs.size()),
               "pc out of range in " + f.fn->name);
      const ir::Instr& in = f.fn->instrs[static_cast<std::size_t>(f.pc)];

      // Restart path: apply the checkpoint the first time execution reaches
      // the loop header — after the (constant) loop-init store, but *before*
      // the condition loads, so the restored induction value governs whether
      // the loop body runs at all. This is the paper's "reading checkpoints
      // ... right before the main computation loop" insertion point (§II-B).
      if (opts_->restore && !restored_ && opts_->mcl && f.fn->name == opts_->mcl->function &&
          in.line == opts_->mcl->begin_line && in.kind != ir::IKind::Store &&
          in.kind != ir::IKind::Alloca) {
        apply_restore(*opts_->restore);
        restored_ = true;
      }

      ++f.pc;  // control-flow instructions overwrite pc below
      exec_instr(in);
    }
  } catch (const FailStop& fs) {
    result_.failed = true;
    result_.iterations_started = fs.iteration - 1;
  }
  result_.peak_memory = std::max(result_.peak_memory, arena_.peak_bytes());
  static auto& instrs = telemetry::metrics().counter("vm.instructions");
  instrs.add(result_.steps);
  return result_;
}

RunResult run_module(const ir::Module& module, const RunOptions& opts) {
  Interpreter interp(module);
  return interp.run(opts);
}

}  // namespace ac::vm
