// Arena memory for the tracing VM.
//
// A single flat address space starting at kBaseAddr: globals are carved out
// first, then an upward-growing bump region serves as the call stack. Frames
// release back to their entry mark on return, so local addresses are reused
// across calls exactly like a real stack — which is what makes the paper's
// Challenge 2 (locals shadowing MLI variables) a real scenario for the
// analysis to solve.
//
// Every 8-byte cell carries a ValueKind tag so loads reproduce the value kind
// that was stored (Int / Float / Addr). Address-kind values are what the
// analysis recognizes as pointer assignments.
//
// Each cell additionally carries a write-epoch stamp: every mutation records
// the arena's current epoch, and the checkpoint engine advances the epoch
// after committing a snapshot — cells stamped later than the last committed
// epoch are exactly the ones an incremental checkpoint must persist.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/value.hpp"

namespace ac::vm {

using trace::Value;
using trace::ValueKind;

constexpr std::uint64_t kBaseAddr = 0x100000;
constexpr std::uint64_t kCellBytes = 8;

class Arena {
 public:
  Arena() = default;

  /// Permanent allocation (module globals); zero-initialized Int cells.
  std::uint64_t alloc_global(std::uint64_t bytes);

  /// Stack allocation for a frame-local variable.
  std::uint64_t alloc_stack(std::uint64_t bytes);

  /// Current stack cursor; pass to release_stack() on function return.
  std::uint64_t stack_mark() const { return top_; }
  void release_stack(std::uint64_t mark);

  Value read(std::uint64_t addr) const;
  void write(std::uint64_t addr, const Value& v);

  /// Raw snapshot/restore of one cell (checkpoint substrate). The kind tag
  /// travels with the payload so restored doubles stay doubles.
  struct RawCell {
    std::uint64_t payload = 0;
    ValueKind kind = ValueKind::Int;
  };
  RawCell read_raw(std::uint64_t addr) const;
  void write_raw(std::uint64_t addr, const RawCell& cell);

  /// Dirty-cell tracking for incremental checkpoints. Every write (including
  /// allocation-time zeroing) stamps its cell with the current epoch; the
  /// engine calls advance_epoch() after committing a snapshot. A cell is
  /// dirty relative to an epoch `e` iff its stamp is >= e.
  std::uint64_t write_epoch() const { return epoch_; }
  std::uint64_t advance_epoch() { return ++epoch_; }
  std::uint64_t cell_epoch(std::uint64_t addr) const;
  bool dirty_since(std::uint64_t addr, std::uint64_t epoch) const {
    return cell_epoch(addr) >= epoch;
  }

  /// Total bytes currently allocated (globals + live stack) — the BLCR-style
  /// process-image size.
  std::uint64_t bytes_in_use() const { return top_ - kBaseAddr; }
  /// High-water mark across the whole run.
  std::uint64_t peak_bytes() const { return peak_ - kBaseAddr; }

  bool valid(std::uint64_t addr) const {
    return addr >= kBaseAddr && addr < top_ && (addr - kBaseAddr) % kCellBytes == 0;
  }

 private:
  // One slot per 8-byte cell.
  std::vector<std::uint64_t> payload_;
  std::vector<ValueKind> kind_;
  std::vector<std::uint64_t> stamp_;  // write epoch of the last mutation
  std::uint64_t epoch_ = 1;
  std::uint64_t top_ = kBaseAddr;
  std::uint64_t peak_ = kBaseAddr;
  bool globals_sealed_ = false;

  std::size_t cell_index(std::uint64_t addr) const;
  std::uint64_t bump(std::uint64_t bytes);
};

}  // namespace ac::vm
