// The tracing interpreter: executes a mini-IR module and emits a dynamic
// instruction execution trace in the LLVM-Tracer block format.
//
// Besides plain execution it provides the three capabilities the paper's
// validation methodology needs (§VI-B):
//   * main-computation-loop (MCL) iteration tracking — a conditional branch
//     at the MCL header line delimits iterations;
//   * checkpoint hook — at every iteration boundary the protected variables
//     are snapshotted into a ckpt::CheckpointImage (the paper inserts FTI
//     calls at the bottom of the loop; the boundary is the same program
//     point);
//   * fail-stop injection and restore-at-loop-entry — the paper raises
//     SIGTERM inside the loop and restarts reading checkpoints right before
//     the main loop.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/blcr.hpp"
#include "ckpt/engine.hpp"
#include "ckpt/image.hpp"
#include "ir/ir.hpp"
#include "trace/writer.hpp"
#include "vm/memory.hpp"

namespace ac::vm {

/// Identifies the main computation loop by host function + source line range
/// (the MCLR column of Table II). begin_line must be the loop-header line.
struct MclRegion {
  std::string function = "main";
  int begin_line = 0;
  int end_line = 0;
};

/// Thrown (and caught internally by run()) when fail-stop injection fires.
struct FailStop {
  int iteration = 0;
};

struct RunOptions {
  /// Trace output; nullptr = do not trace.
  trace::TraceSink* sink = nullptr;

  /// Loop instrumentation (checkpoint/failure/restore need this).
  std::optional<MclRegion> mcl;

  /// Variables to checkpoint at each iteration boundary: resolved against the
  /// MCL host function's locals, then module globals.
  std::vector<std::string> protect;

  /// Called with a fresh image at the end of every `checkpoint_interval`-th
  /// completed iteration (the paper's "periodically ... with a certain
  /// interval", §II-B).
  std::function<void(const ckpt::CheckpointImage&)> on_checkpoint;

  /// Checkpoint every N completed iterations (N >= 1).
  int checkpoint_interval = 1;

  /// Called at every iteration boundary with the live machine state
  /// (BLCR-style full-image cost measurements).
  std::function<void(const ckpt::MachineState&)> on_machine_state;

  /// Full checkpoint-engine integration: at every iteration boundary the
  /// engine's registered variables are bound to their arena ranges and the
  /// engine decides (per its policy) whether to capture an incremental or
  /// full snapshot. Independent of the on_checkpoint hook above.
  ckpt::CheckpointEngine* engine = nullptr;

  /// Inject a fail-stop when this iteration is about to start (1-based);
  /// -1 disables. The failure fires after iteration N-1's checkpoint.
  int fail_at_iteration = -1;

  /// Restore this image when execution first reaches the MCL header
  /// (restart path). Variables resolve like `protect`.
  const ckpt::CheckpointImage* restore = nullptr;

  /// Runaway guard.
  std::uint64_t max_steps = 2'000'000'000ull;
};

struct RunResult {
  std::string output;           // concatenated print_int/print_float lines
  std::int64_t exit_code = 0;   // main's return value
  std::uint64_t steps = 0;      // dynamic instructions executed
  std::uint64_t peak_memory = 0;
  int iterations_started = 0;   // MCL header evaluations that entered the body
  bool failed = false;          // fail-stop injection fired
};

class Interpreter {
 public:
  explicit Interpreter(const ir::Module& module);

  /// Execute main() to completion (or injected failure). Reusable only once.
  RunResult run(const RunOptions& opts);

 private:
  struct Frame {
    const ir::Function* fn = nullptr;
    std::vector<std::uint64_t> slot_addr;
    std::vector<Value> regs;
    int pc = 0;
    std::uint64_t stack_mark = 0;
    int pending_dst = -1;  // caller-side register awaiting our Ret value
  };

  const ir::Module& module_;
  Arena arena_;
  std::vector<std::uint64_t> global_addr_;
  std::vector<Frame> frames_;
  const RunOptions* opts_ = nullptr;
  RunResult result_;
  std::uint64_t dyn_id_ = 0;
  double timer_counter_ = 0.0;
  int iteration_ = 0;      // completed header evaluations
  bool restored_ = false;
  // Engine registrations bound once at the first iteration boundary — the
  // MCL frame stays live across iterations, so the addresses are invariant.
  std::vector<ckpt::ProtectedRegion> engine_regions_;
  bool engine_regions_bound_ = false;

  Frame& top() { return frames_.back(); }

  void emit(trace::TraceRecord rec);
  void emit_global_allocas();

  Value eval(const Frame& f, const ir::Opnd& o) const;
  std::uint64_t slot_address(const Frame& f, int slot, bool is_global) const;
  std::string opnd_reg_name(const ir::Opnd& o) const;
  trace::Operand opnd_to_trace(const Frame& f, const ir::Opnd& o, int index) const;

  void push_frame(const ir::Function& fn, const std::vector<Value>& args,
                  const std::vector<std::string>& arg_names, int pending_dst);
  void pop_frame(const Value* ret_value);

  void exec_instr(const ir::Instr& in);
  void exec_alloca(const ir::Instr& in);
  void exec_load(const ir::Instr& in);
  void exec_store(const ir::Instr& in);
  void exec_gep(const ir::Instr& in);
  void exec_bin(const ir::Instr& in);
  void exec_cast(const ir::Instr& in);
  void exec_br(const ir::Instr& in);
  void exec_call(const ir::Instr& in);
  void exec_ret(const ir::Instr& in);

  Value run_builtin(const std::string& name, const std::vector<Value>& args, bool& has_result);

  // MCL instrumentation at a conditional header-line branch.
  void on_header_evaluation();
  std::vector<ckpt::ProtectedRegion>
  resolve_protected(const std::vector<std::string>& names) const;
  ckpt::CheckpointImage snapshot(const std::vector<std::string>& names) const;
  void apply_restore(const ckpt::CheckpointImage& img);
  ckpt::MachineState machine_state() const;
};

/// Convenience: compile-free single-shot execution of a prepared module.
RunResult run_module(const ir::Module& module, const RunOptions& opts);

}  // namespace ac::vm
