#include "vm/memory.hpp"

#include <cstring>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace ac::vm {

std::size_t Arena::cell_index(std::uint64_t addr) const {
  if (!valid(addr)) {
    throw VmError(strf("invalid memory access at 0x%llx (allocated up to 0x%llx)",
                       static_cast<unsigned long long>(addr),
                       static_cast<unsigned long long>(top_)));
  }
  return static_cast<std::size_t>((addr - kBaseAddr) / kCellBytes);
}

std::uint64_t Arena::bump(std::uint64_t bytes) {
  if (bytes == 0 || bytes % kCellBytes != 0) {
    throw VmError("allocation size must be a positive multiple of 8");
  }
  const std::uint64_t addr = top_;
  top_ += bytes;
  if (top_ > peak_) peak_ = top_;
  const std::size_t need = static_cast<std::size_t>((top_ - kBaseAddr) / kCellBytes);
  const std::size_t first = static_cast<std::size_t>((addr - kBaseAddr) / kCellBytes);
  if (payload_.size() < need) {
    payload_.resize(need, 0);
    kind_.resize(need, ValueKind::Int);
    stamp_.resize(need, 0);
  }
  // Zero any reused stack region so locals start deterministic (resize only
  // zero-fills the appended tail; cells below the historical high-water mark
  // may hold a dead frame's values).
  for (std::size_t i = first; i < need; ++i) {
    payload_[i] = 0;
    kind_[i] = ValueKind::Int;
  }
  // Allocation-time zeroing is a write: stamp so incremental checkpoints
  // capture freshly (re)allocated cells.
  for (std::size_t i = first; i < need; ++i) stamp_[i] = epoch_;
  return addr;
}

std::uint64_t Arena::alloc_global(std::uint64_t bytes) {
  AC_CHECK(!globals_sealed_, "globals must be allocated before any stack frame");
  return bump(bytes);
}

std::uint64_t Arena::alloc_stack(std::uint64_t bytes) {
  globals_sealed_ = true;
  return bump(bytes);
}

void Arena::release_stack(std::uint64_t mark) {
  AC_CHECK(mark >= kBaseAddr && mark <= top_, "bad stack release mark");
  top_ = mark;
}

Value Arena::read(std::uint64_t addr) const {
  const std::size_t i = cell_index(addr);
  switch (kind_[i]) {
    case ValueKind::Int: {
      std::int64_t v;
      std::memcpy(&v, &payload_[i], sizeof v);
      return Value::make_int(v);
    }
    case ValueKind::Float: {
      double v;
      std::memcpy(&v, &payload_[i], sizeof v);
      return Value::make_float(v);
    }
    case ValueKind::Addr:
      return Value::make_addr(payload_[i]);
  }
  throw VmError("corrupt cell kind");
}

void Arena::write(std::uint64_t addr, const Value& v) {
  const std::size_t i = cell_index(addr);
  stamp_[i] = epoch_;
  kind_[i] = v.kind;
  switch (v.kind) {
    case ValueKind::Int:
      std::memcpy(&payload_[i], &v.i, sizeof v.i);
      break;
    case ValueKind::Float:
      std::memcpy(&payload_[i], &v.f, sizeof v.f);
      break;
    case ValueKind::Addr:
      payload_[i] = v.addr;
      break;
  }
}

Arena::RawCell Arena::read_raw(std::uint64_t addr) const {
  const std::size_t i = cell_index(addr);
  return RawCell{payload_[i], kind_[i]};
}

void Arena::write_raw(std::uint64_t addr, const RawCell& cell) {
  const std::size_t i = cell_index(addr);
  stamp_[i] = epoch_;
  payload_[i] = cell.payload;
  kind_[i] = cell.kind;
}

std::uint64_t Arena::cell_epoch(std::uint64_t addr) const { return stamp_[cell_index(addr)]; }

}  // namespace ac::vm
