#include "minic/compiler.hpp"

#include "minic/codegen.hpp"
#include "minic/parser.hpp"

namespace ac::minic {

ir::Module compile(const std::string& source) {
  Program prog = parse(source);
  ir::Module mod = codegen(prog);
  ir::verify_module(mod);
  return mod;
}

}  // namespace ac::minic
