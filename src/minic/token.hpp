// Token definitions for the MiniC frontend.
#pragma once

#include <cstdint>
#include <string>

namespace ac::minic {

enum class Tok : std::uint8_t {
  End,
  // literals / identifiers
  IntLit, FloatLit, Ident,
  // keywords
  KwInt, KwDouble, KwVoid, KwIf, KwElse, KwFor, KwWhile, KwReturn, KwBreak, KwContinue,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket, Comma, Semi,
  // operators
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
  Plus, Minus, Star, Slash, Percent, PlusPlus, MinusMinus,
  EQ, NE, LT, LE, GT, GE, AndAnd, OrOr, Not,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;       // identifier spelling / literal text
  std::int64_t int_val = 0;
  double float_val = 0.0;
  int line = 0;
  int col = 0;
};

const char* tok_name(Tok t);

}  // namespace ac::minic
