// Recursive-descent parser for MiniC.
#pragma once

#include <string>

#include "minic/ast.hpp"

namespace ac::minic {

/// Parse a full translation unit; throws ac::CompileError with a line-tagged
/// message on the first syntax error.
Program parse(const std::string& source);

}  // namespace ac::minic
