// MiniC -> mini-IR code generation (with integrated semantic checking).
//
// Emission is `-O0`-shaped on purpose (see src/ir/ir.hpp): allocas are hoisted
// to function entry, every variable access is an explicit Load/Store, and
// array accesses go through GetElementPtr — producing traces with exactly the
// instruction mix the paper's analysis consumes (Table I).
#pragma once

#include "ir/ir.hpp"
#include "minic/ast.hpp"

namespace ac::minic {

/// Lower a parsed program; throws ac::CompileError on semantic errors
/// (undeclared identifiers, type errors, arity mismatches, bad subscripts).
ir::Module codegen(const Program& prog);

struct Builtin {
  Ty ret;
  std::vector<Ty> params;
};

/// Builtin table (print_int, print_float, sqrt, fabs, pow, exp, log, sin,
/// cos, floor, timer). Returns nullptr for unknown names.
const Builtin* find_builtin(const std::string& name);

}  // namespace ac::minic
