// MiniC lexer: produces the full token stream for a translation unit.
// `//` and `/* */` comments are skipped; line numbers are tracked precisely
// because AutoCheck's main-computation-loop region is specified in source
// lines.
#pragma once

#include <string>
#include <vector>

#include "minic/token.hpp"

namespace ac::minic {

/// Tokenize `source`; throws ac::CompileError on invalid characters or
/// unterminated comments/literals.
std::vector<Token> lex(const std::string& source);

}  // namespace ac::minic
