// MiniC abstract syntax tree.
//
// The language is the C subset needed to port the paper's 14 HPC benchmarks
// faithfully at the dataflow level: int/double scalars, fixed-size
// multi-dimensional arrays, 1-D pointer parameters, functions, for/while/if,
// the usual arithmetic/relational/logical operators and compound assignment.
// See docs/minic.md for the full grammar and semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ac::minic {

enum class Ty : std::uint8_t { Int, Double, Void };

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLit, FloatLit, VarRef, Index, Unary, Binary, Assign, Call,
};

enum class UnOp : std::uint8_t { Neg, Not };

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  EQ, NE, LT, LE, GT, GE,
  And, Or,
};

struct Expr {
  ExprKind kind;
  int line = 0;

  // IntLit / FloatLit
  std::int64_t int_val = 0;
  double float_val = 0.0;

  // VarRef / Index base / Call target
  std::string name;

  // Index: one expr per subscript; Call: arguments.
  std::vector<std::unique_ptr<Expr>> args;

  // Unary / Binary / Assign
  UnOp un = UnOp::Neg;
  BinaryOp bin = BinaryOp::Add;
  std::unique_ptr<Expr> lhs;  // Assign target (VarRef or Index) / binary lhs / unary operand
  std::unique_ptr<Expr> rhs;

  explicit Expr(ExprKind k, int ln) : kind(k), line(ln) {}
};

using ExprPtr = std::unique_ptr<Expr>;

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Decl, ExprStmt, Block, If, While, For, Return, Break, Continue, Empty,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  int line = 0;

  // Decl
  Ty decl_type = Ty::Int;
  std::string name;
  std::vector<std::int64_t> dims;  // array dims, empty for scalar
  ExprPtr init;                    // optional scalar initializer

  // ExprStmt / If cond / While cond / For cond / Return value
  ExprPtr expr;

  // Block / bodies
  std::vector<StmtPtr> body;

  // If
  StmtPtr then_branch;
  StmtPtr else_branch;

  // While / For body
  StmtPtr loop_body;

  // For init/step (either may be null)
  StmtPtr for_init;   // Decl or ExprStmt
  ExprPtr for_step;   // expression (e.g. desugared it = it + 1)

  explicit Stmt(StmtKind k, int ln) : kind(k), line(ln) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct ParamDecl {
  Ty type = Ty::Int;
  std::string name;
  bool is_array = false;  // `T name[]`: pointer parameter
  int line = 0;
};

struct FuncDecl {
  Ty return_type = Ty::Void;
  std::string name;
  std::vector<ParamDecl> params;
  StmtPtr body;  // Block
  int line = 0;
};

struct GlobalDecl {
  Ty type = Ty::Int;
  std::string name;
  std::vector<std::int64_t> dims;
  int line = 0;
};

struct Program {
  std::vector<GlobalDecl> globals;
  std::vector<FuncDecl> functions;
};

}  // namespace ac::minic
