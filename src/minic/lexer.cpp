#include "minic/lexer.hpp"

#include <cctype>
#include <map>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace ac::minic {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "end of input";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::Ident: return "identifier";
    case Tok::KwInt: return "'int'";
    case Tok::KwDouble: return "'double'";
    case Tok::KwVoid: return "'void'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwFor: return "'for'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Assign: return "'='";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::PlusPlus: return "'++'";
    case Tok::MinusMinus: return "'--'";
    case Tok::EQ: return "'=='";
    case Tok::NE: return "'!='";
    case Tok::LT: return "'<'";
    case Tok::LE: return "'<='";
    case Tok::GT: return "'>'";
    case Tok::GE: return "'>='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Not: return "'!'";
  }
  return "?";
}

namespace {

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw = {
      {"int", Tok::KwInt},       {"double", Tok::KwDouble}, {"void", Tok::KwVoid},
      {"if", Tok::KwIf},         {"else", Tok::KwElse},     {"for", Tok::KwFor},
      {"while", Tok::KwWhile},   {"return", Tok::KwReturn}, {"break", Tok::KwBreak},
      {"continue", Tok::KwContinue},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_space_and_comments();
      Token t = next_token();
      const bool at_end = t.kind == Tok::End;
      out.push_back(std::move(t));
      if (at_end) break;
    }
    return out;
  }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;

  [[noreturn]] void fail(const std::string& msg) {
    throw CompileError(strf("line %d: %s", line_, msg.c_str()));
  }

  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_space_and_comments() {
    while (pos_ < src_.size()) {
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (pos_ < src_.size() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (true) {
          if (pos_ >= src_.size()) fail("unterminated block comment");
          if (peek() == '*' && peek(1) == '/') {
            advance();
            advance();
            break;
          }
          advance();
        }
      } else {
        break;
      }
    }
  }

  Token make(Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.col = col_;
    return t;
  }

  Token next_token() {
    if (pos_ >= src_.size()) return make(Tok::End);
    Token t = make(Tok::End);
    char c = peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
        ident += advance();
      }
      auto it = keywords().find(ident);
      t.kind = it != keywords().end() ? it->second : Tok::Ident;
      t.text = std::move(ident);
      return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::string num;
      bool is_float = false;
      while (pos_ < src_.size()) {
        char d = peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
          num += advance();
        } else if (d == '.' && !is_float) {
          is_float = true;
          num += advance();
        } else if ((d == 'e' || d == 'E') &&
                   (std::isdigit(static_cast<unsigned char>(peek(1))) ||
                    ((peek(1) == '+' || peek(1) == '-') &&
                     std::isdigit(static_cast<unsigned char>(peek(2)))))) {
          is_float = true;
          num += advance();          // e
          if (peek() == '+' || peek() == '-') num += advance();
          while (std::isdigit(static_cast<unsigned char>(peek()))) num += advance();
          break;
        } else {
          break;
        }
      }
      t.text = num;
      if (is_float) {
        t.kind = Tok::FloatLit;
        t.float_val = parse_f64(num);
      } else {
        t.kind = Tok::IntLit;
        t.int_val = parse_i64(num);
      }
      return t;
    }

    advance();
    auto two = [&](char second, Tok yes, Tok no) {
      if (peek() == second) {
        advance();
        t.kind = yes;
      } else {
        t.kind = no;
      }
      return t;
    };

    switch (c) {
      case '(': t.kind = Tok::LParen; return t;
      case ')': t.kind = Tok::RParen; return t;
      case '{': t.kind = Tok::LBrace; return t;
      case '}': t.kind = Tok::RBrace; return t;
      case '[': t.kind = Tok::LBracket; return t;
      case ']': t.kind = Tok::RBracket; return t;
      case ',': t.kind = Tok::Comma; return t;
      case ';': t.kind = Tok::Semi; return t;
      case '%': t.kind = Tok::Percent; return t;
      case '=': return two('=', Tok::EQ, Tok::Assign);
      case '!': return two('=', Tok::NE, Tok::Not);
      case '<': return two('=', Tok::LE, Tok::LT);
      case '>': return two('=', Tok::GE, Tok::GT);
      case '+':
        if (peek() == '+') { advance(); t.kind = Tok::PlusPlus; return t; }
        return two('=', Tok::PlusAssign, Tok::Plus);
      case '-':
        if (peek() == '-') { advance(); t.kind = Tok::MinusMinus; return t; }
        return two('=', Tok::MinusAssign, Tok::Minus);
      case '*': return two('=', Tok::StarAssign, Tok::Star);
      case '/': return two('=', Tok::SlashAssign, Tok::Slash);
      case '&':
        if (peek() == '&') { advance(); t.kind = Tok::AndAnd; return t; }
        fail("stray '&' (MiniC has no address-of / bitwise ops)");
      case '|':
        if (peek() == '|') { advance(); t.kind = Tok::OrOr; return t; }
        fail("stray '|'");
      default:
        fail(strf("invalid character '%c' (0x%02x)", c, static_cast<unsigned char>(c)));
    }
    return t;  // unreachable
  }
};

}  // namespace

std::vector<Token> lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace ac::minic
