#include "minic/parser.hpp"

#include "minic/lexer.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace ac::minic {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Program run() {
    Program prog;
    while (!at(Tok::End)) parse_top_level(prog);
    return prog;
  }

 private:
  std::vector<Token> toks_;
  std::size_t pos_ = 0;

  const Token& cur() const { return toks_[pos_]; }
  const Token& ahead(std::size_t n) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  bool at(Tok k) const { return cur().kind == k; }

  [[noreturn]] void fail(const std::string& msg) {
    throw CompileError(strf("line %d: %s (got %s)", cur().line, msg.c_str(), tok_name(cur().kind)));
  }

  Token eat(Tok k, const char* what) {
    if (!at(k)) fail(strf("expected %s in %s", tok_name(k), what));
    return toks_[pos_++];
  }

  bool accept(Tok k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }

  bool at_type() const { return at(Tok::KwInt) || at(Tok::KwDouble); }

  Ty parse_type() {
    if (accept(Tok::KwInt)) return Ty::Int;
    if (accept(Tok::KwDouble)) return Ty::Double;
    fail("expected type");
  }

  // ---- top level ----------------------------------------------------------

  void parse_top_level(Program& prog) {
    if (accept(Tok::KwVoid)) {
      parse_function(prog, Ty::Void);
      return;
    }
    if (!at_type()) fail("expected declaration");
    Ty type = parse_type();
    // Lookahead: `T name (` is a function, otherwise a global variable.
    if (at(Tok::Ident) && ahead(1).kind == Tok::LParen) {
      parse_function(prog, type);
      return;
    }
    GlobalDecl g;
    g.type = type;
    Token name = eat(Tok::Ident, "global declaration");
    g.name = name.text;
    g.line = name.line;
    while (accept(Tok::LBracket)) {
      Token dim = eat(Tok::IntLit, "array dimension");
      if (dim.int_val <= 0) fail("array dimension must be positive");
      g.dims.push_back(dim.int_val);
      eat(Tok::RBracket, "array dimension");
    }
    eat(Tok::Semi, "global declaration");
    prog.globals.push_back(std::move(g));
  }

  void parse_function(Program& prog, Ty ret) {
    FuncDecl fn;
    fn.return_type = ret;
    Token name = eat(Tok::Ident, "function declaration");
    fn.name = name.text;
    fn.line = name.line;
    eat(Tok::LParen, "parameter list");
    if (!at(Tok::RParen)) {
      do {
        ParamDecl p;
        p.type = parse_type();
        Token pn = eat(Tok::Ident, "parameter");
        p.name = pn.text;
        p.line = pn.line;
        if (accept(Tok::LBracket)) {
          eat(Tok::RBracket, "array parameter");
          p.is_array = true;
        }
        fn.params.push_back(std::move(p));
      } while (accept(Tok::Comma));
    }
    eat(Tok::RParen, "parameter list");
    fn.body = parse_block();
    prog.functions.push_back(std::move(fn));
  }

  // ---- statements ---------------------------------------------------------

  StmtPtr parse_block() {
    Token brace = eat(Tok::LBrace, "block");
    auto block = std::make_unique<Stmt>(StmtKind::Block, brace.line);
    while (!at(Tok::RBrace)) {
      if (at(Tok::End)) fail("unterminated block");
      block->body.push_back(parse_stmt());
    }
    eat(Tok::RBrace, "block");
    return block;
  }

  StmtPtr parse_stmt() {
    if (at(Tok::LBrace)) return parse_block();
    if (at_type()) return parse_decl();

    const int line = cur().line;
    if (accept(Tok::Semi)) return std::make_unique<Stmt>(StmtKind::Empty, line);

    if (accept(Tok::KwIf)) {
      auto s = std::make_unique<Stmt>(StmtKind::If, line);
      eat(Tok::LParen, "if condition");
      s->expr = parse_expr();
      eat(Tok::RParen, "if condition");
      s->then_branch = parse_stmt();
      if (accept(Tok::KwElse)) s->else_branch = parse_stmt();
      return s;
    }
    if (accept(Tok::KwWhile)) {
      auto s = std::make_unique<Stmt>(StmtKind::While, line);
      eat(Tok::LParen, "while condition");
      s->expr = parse_expr();
      eat(Tok::RParen, "while condition");
      s->loop_body = parse_stmt();
      return s;
    }
    if (accept(Tok::KwFor)) {
      auto s = std::make_unique<Stmt>(StmtKind::For, line);
      eat(Tok::LParen, "for header");
      if (!at(Tok::Semi)) {
        if (at_type()) {
          s->for_init = parse_decl();  // consumes the ';'
        } else {
          auto init = std::make_unique<Stmt>(StmtKind::ExprStmt, cur().line);
          init->expr = parse_expr();
          s->for_init = std::move(init);
          eat(Tok::Semi, "for header");
        }
      } else {
        eat(Tok::Semi, "for header");
      }
      if (!at(Tok::Semi)) s->expr = parse_expr();
      eat(Tok::Semi, "for header");
      if (!at(Tok::RParen)) s->for_step = parse_expr();
      eat(Tok::RParen, "for header");
      s->loop_body = parse_stmt();
      return s;
    }
    if (accept(Tok::KwReturn)) {
      auto s = std::make_unique<Stmt>(StmtKind::Return, line);
      if (!at(Tok::Semi)) s->expr = parse_expr();
      eat(Tok::Semi, "return statement");
      return s;
    }
    if (accept(Tok::KwBreak)) {
      eat(Tok::Semi, "break statement");
      return std::make_unique<Stmt>(StmtKind::Break, line);
    }
    if (accept(Tok::KwContinue)) {
      eat(Tok::Semi, "continue statement");
      return std::make_unique<Stmt>(StmtKind::Continue, line);
    }

    auto s = std::make_unique<Stmt>(StmtKind::ExprStmt, line);
    s->expr = parse_expr();
    eat(Tok::Semi, "expression statement");
    return s;
  }

  StmtPtr parse_decl() {
    Ty type = parse_type();
    Token name = eat(Tok::Ident, "declaration");
    auto s = std::make_unique<Stmt>(StmtKind::Decl, name.line);
    s->decl_type = type;
    s->name = name.text;
    while (accept(Tok::LBracket)) {
      Token dim = eat(Tok::IntLit, "array dimension");
      if (dim.int_val <= 0) fail("array dimension must be positive");
      s->dims.push_back(dim.int_val);
      eat(Tok::RBracket, "array dimension");
    }
    if (accept(Tok::Assign)) {
      if (!s->dims.empty()) fail("array initializers are not supported");
      s->init = parse_expr();
    }
    eat(Tok::Semi, "declaration");
    return s;
  }

  // ---- expressions --------------------------------------------------------

  ExprPtr parse_expr() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_or();
    const int line = cur().line;

    auto desugar_compound = [&](BinaryOp op) {
      // a X= b  ==>  a = a X b  (the LHS lvalue is cloned; MiniC subscripts
      // are side-effect free by construction, so double evaluation is safe).
      ExprPtr lhs_copy = clone_lvalue(*lhs);
      ExprPtr rhs = parse_assignment();
      auto bin = std::make_unique<Expr>(ExprKind::Binary, line);
      bin->bin = op;
      bin->lhs = std::move(lhs_copy);
      bin->rhs = std::move(rhs);
      auto asg = std::make_unique<Expr>(ExprKind::Assign, line);
      asg->lhs = std::move(lhs);
      asg->rhs = std::move(bin);
      return asg;
    };

    if (accept(Tok::Assign)) {
      require_lvalue(*lhs);
      auto asg = std::make_unique<Expr>(ExprKind::Assign, line);
      asg->lhs = std::move(lhs);
      asg->rhs = parse_assignment();
      return asg;
    }
    if (accept(Tok::PlusAssign)) { require_lvalue(*lhs); return desugar_compound(BinaryOp::Add); }
    if (accept(Tok::MinusAssign)) { require_lvalue(*lhs); return desugar_compound(BinaryOp::Sub); }
    if (accept(Tok::StarAssign)) { require_lvalue(*lhs); return desugar_compound(BinaryOp::Mul); }
    if (accept(Tok::SlashAssign)) { require_lvalue(*lhs); return desugar_compound(BinaryOp::Div); }

    if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
      // x++ / x-- desugars to x = x +/- 1 (value is the new value; MiniC only
      // allows these as statements / for-steps, so the distinction is moot).
      const BinaryOp op = at(Tok::PlusPlus) ? BinaryOp::Add : BinaryOp::Sub;
      ++pos_;
      require_lvalue(*lhs);
      ExprPtr lhs_copy = clone_lvalue(*lhs);
      auto one = std::make_unique<Expr>(ExprKind::IntLit, line);
      one->int_val = 1;
      auto bin = std::make_unique<Expr>(ExprKind::Binary, line);
      bin->bin = op;
      bin->lhs = std::move(lhs_copy);
      bin->rhs = std::move(one);
      auto asg = std::make_unique<Expr>(ExprKind::Assign, line);
      asg->lhs = std::move(lhs);
      asg->rhs = std::move(bin);
      return asg;
    }

    return lhs;
  }

  void require_lvalue(const Expr& e) {
    if (e.kind != ExprKind::VarRef && e.kind != ExprKind::Index) {
      fail("assignment target must be a variable or array element");
    }
  }

  ExprPtr clone_lvalue(const Expr& e) {
    auto out = std::make_unique<Expr>(e.kind, e.line);
    out->name = e.name;
    for (const auto& a : e.args) out->args.push_back(clone_expr(*a));
    return out;
  }

  ExprPtr clone_expr(const Expr& e) {
    auto out = std::make_unique<Expr>(e.kind, e.line);
    out->int_val = e.int_val;
    out->float_val = e.float_val;
    out->name = e.name;
    out->un = e.un;
    out->bin = e.bin;
    if (e.lhs) out->lhs = clone_expr(*e.lhs);
    if (e.rhs) out->rhs = clone_expr(*e.rhs);
    for (const auto& a : e.args) out->args.push_back(clone_expr(*a));
    return out;
  }

  ExprPtr parse_binary_chain(ExprPtr (Parser::*next)(),
                             std::initializer_list<std::pair<Tok, BinaryOp>> ops) {
    ExprPtr lhs = (this->*next)();
    while (true) {
      bool matched = false;
      for (auto [tok, op] : ops) {
        if (at(tok)) {
          const int line = cur().line;
          ++pos_;
          auto bin = std::make_unique<Expr>(ExprKind::Binary, line);
          bin->bin = op;
          bin->lhs = std::move(lhs);
          bin->rhs = (this->*next)();
          lhs = std::move(bin);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr parse_or() {
    return parse_binary_chain(&Parser::parse_and, {{Tok::OrOr, BinaryOp::Or}});
  }
  ExprPtr parse_and() {
    return parse_binary_chain(&Parser::parse_equality, {{Tok::AndAnd, BinaryOp::And}});
  }
  ExprPtr parse_equality() {
    return parse_binary_chain(&Parser::parse_relational,
                              {{Tok::EQ, BinaryOp::EQ}, {Tok::NE, BinaryOp::NE}});
  }
  ExprPtr parse_relational() {
    return parse_binary_chain(&Parser::parse_additive,
                              {{Tok::LT, BinaryOp::LT}, {Tok::LE, BinaryOp::LE},
                               {Tok::GT, BinaryOp::GT}, {Tok::GE, BinaryOp::GE}});
  }
  ExprPtr parse_additive() {
    return parse_binary_chain(&Parser::parse_multiplicative,
                              {{Tok::Plus, BinaryOp::Add}, {Tok::Minus, BinaryOp::Sub}});
  }
  ExprPtr parse_multiplicative() {
    return parse_binary_chain(&Parser::parse_unary,
                              {{Tok::Star, BinaryOp::Mul}, {Tok::Slash, BinaryOp::Div},
                               {Tok::Percent, BinaryOp::Rem}});
  }

  ExprPtr parse_unary() {
    const int line = cur().line;
    if (accept(Tok::Minus)) {
      auto e = std::make_unique<Expr>(ExprKind::Unary, line);
      e->un = UnOp::Neg;
      e->lhs = parse_unary();
      return e;
    }
    if (accept(Tok::Not)) {
      auto e = std::make_unique<Expr>(ExprKind::Unary, line);
      e->un = UnOp::Not;
      e->lhs = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    if (e->kind == ExprKind::VarRef && at(Tok::LBracket)) {
      auto idx = std::make_unique<Expr>(ExprKind::Index, e->line);
      idx->name = e->name;
      while (accept(Tok::LBracket)) {
        idx->args.push_back(parse_expr());
        eat(Tok::RBracket, "array subscript");
      }
      return idx;
    }
    return e;
  }

  ExprPtr parse_primary() {
    const Token& t = cur();
    switch (t.kind) {
      case Tok::IntLit: {
        ++pos_;
        auto e = std::make_unique<Expr>(ExprKind::IntLit, t.line);
        e->int_val = t.int_val;
        return e;
      }
      case Tok::FloatLit: {
        ++pos_;
        auto e = std::make_unique<Expr>(ExprKind::FloatLit, t.line);
        e->float_val = t.float_val;
        return e;
      }
      case Tok::Ident: {
        ++pos_;
        if (accept(Tok::LParen)) {
          auto call = std::make_unique<Expr>(ExprKind::Call, t.line);
          call->name = t.text;
          if (!at(Tok::RParen)) {
            do {
              call->args.push_back(parse_expr());
            } while (accept(Tok::Comma));
          }
          eat(Tok::RParen, "call arguments");
          return call;
        }
        auto e = std::make_unique<Expr>(ExprKind::VarRef, t.line);
        e->name = t.text;
        return e;
      }
      case Tok::LParen: {
        ++pos_;
        ExprPtr e = parse_expr();
        eat(Tok::RParen, "parenthesized expression");
        return e;
      }
      default:
        fail("expected expression");
    }
  }
};

}  // namespace

Program parse(const std::string& source) { return Parser(lex(source)).run(); }

}  // namespace ac::minic
