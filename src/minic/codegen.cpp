#include "minic/codegen.hpp"

#include <map>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace ac::minic {

const Builtin* find_builtin(const std::string& name) {
  static const std::map<std::string, Builtin> table = {
      {"print_int", {Ty::Void, {Ty::Int}}},
      {"print_float", {Ty::Void, {Ty::Double}}},
      {"sqrt", {Ty::Double, {Ty::Double}}},
      {"fabs", {Ty::Double, {Ty::Double}}},
      {"pow", {Ty::Double, {Ty::Double, Ty::Double}}},
      {"exp", {Ty::Double, {Ty::Double}}},
      {"log", {Ty::Double, {Ty::Double}}},
      {"sin", {Ty::Double, {Ty::Double}}},
      {"cos", {Ty::Double, {Ty::Double}}},
      {"floor", {Ty::Double, {Ty::Double}}},
      {"timer", {Ty::Double, {}}},
  };
  auto it = table.find(name);
  return it == table.end() ? nullptr : &it->second;
}

namespace {

using ir::Instr;
using ir::IKind;
using ir::Opnd;

ir::TypeKind to_elem(Ty t) { return t == Ty::Double ? ir::TypeKind::F64 : ir::TypeKind::I64; }

/// A typed rvalue produced by expression codegen.
struct TypedVal {
  Opnd opnd;
  Ty type = Ty::Int;
  bool is_array_name = false;  // array decay value (only legal as a call arg)
  // for array-name values:
  int var_slot = -1;
  bool var_is_global = false;
  bool is_pointer_param = false;
};

/// Where a resolved identifier lives.
struct Binding {
  bool is_global = false;
  int slot = -1;
  const ir::VarInfo* info = nullptr;
};

class FuncCodegen {
 public:
  FuncCodegen(const Program& prog, const FuncDecl& fn, ir::Module& mod,
              const std::map<std::string, int>& global_slots)
      : prog_(prog), fn_(fn), mod_(mod), global_slots_(global_slots) {}

  ir::Function run() {
    out_.name = fn_.name;
    out_.decl_line = fn_.line;
    out_.returns_void = fn_.return_type == Ty::Void;
    out_.returns_float = fn_.return_type == Ty::Double;

    scopes_.emplace_back();
    for (const auto& p : fn_.params) {
      ir::VarInfo v;
      v.name = p.name;
      v.elem = to_elem(p.type);
      v.is_pointer_param = p.is_array;
      v.decl_line = p.line;
      const int slot = static_cast<int>(out_.locals.size());
      if (!scopes_.back().emplace(p.name, slot).second) {
        fail(p.line, "duplicate parameter '" + p.name + "'");
      }
      out_.locals.push_back(v);
    }
    out_.num_params = static_cast<int>(fn_.params.size());

    // Hoist all allocas (params + every declared local) to function entry,
    // like clang -O0; the paper's Challenge-2 relies on locals being
    // introduced by Alloca records at call entry.
    collect_locals(*fn_.body);
    for (int slot = 0; slot < static_cast<int>(out_.locals.size()); ++slot) {
      Instr in;
      in.kind = IKind::Alloca;
      in.line = out_.locals[static_cast<std::size_t>(slot)].decl_line;
      in.var_slot = slot;
      emit(std::move(in));
    }

    gen_stmt(*fn_.body);

    // Implicit return for void functions / fallthrough. A non-void function
    // falling off the end returns 0 (traps are not worth modelling here).
    Instr ret;
    ret.kind = IKind::Ret;
    ret.line = fn_.line;
    if (!out_.returns_void) {
      ret.a = out_.returns_float ? Opnd::imm_float(0.0) : Opnd::imm_int(0);
    }
    emit(std::move(ret));
    return std::move(out_);
  }

 private:
  const Program& prog_;
  const FuncDecl& fn_;
  ir::Module& mod_;
  const std::map<std::string, int>& global_slots_;
  ir::Function out_;

  std::vector<std::map<std::string, int>> scopes_;
  std::vector<std::vector<int>> break_patches_;
  std::vector<std::vector<int>> continue_patches_;

  [[noreturn]] void fail(int line, const std::string& msg) {
    throw CompileError(strf("line %d: in %s: %s", line, fn_.name.c_str(), msg.c_str()));
  }

  int emit(Instr in) {
    out_.instrs.push_back(std::move(in));
    return static_cast<int>(out_.instrs.size()) - 1;
  }

  int new_reg() { return out_.num_regs++; }

  int here() const { return static_cast<int>(out_.instrs.size()); }

  // -- local collection (pre-pass, same walk order as gen_stmt) -------------

  void collect_locals(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Decl: {
        ir::VarInfo v;
        v.name = s.name;
        v.elem = to_elem(s.decl_type);
        v.dims.assign(s.dims.begin(), s.dims.end());
        v.decl_line = s.line;
        out_.locals.push_back(v);
        break;
      }
      case StmtKind::Block:
        for (const auto& child : s.body) collect_locals(*child);
        break;
      case StmtKind::If:
        collect_locals(*s.then_branch);
        if (s.else_branch) collect_locals(*s.else_branch);
        break;
      case StmtKind::While:
        collect_locals(*s.loop_body);
        break;
      case StmtKind::For:
        if (s.for_init) collect_locals(*s.for_init);
        collect_locals(*s.loop_body);
        break;
      default:
        break;
    }
  }

  // -- name resolution -------------------------------------------------------

  Binding resolve(int line, const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        Binding b;
        b.slot = found->second;
        b.info = &out_.locals[static_cast<std::size_t>(found->second)];
        return b;
      }
    }
    auto g = global_slots_.find(name);
    if (g != global_slots_.end()) {
      Binding b;
      b.is_global = true;
      b.slot = g->second;
      b.info = &mod_.globals[static_cast<std::size_t>(g->second)];
      return b;
    }
    fail(line, "use of undeclared identifier '" + name + "'");
  }

  Ty elem_ty(const ir::VarInfo& v) const {
    return v.elem == ir::TypeKind::F64 ? Ty::Double : Ty::Int;
  }

  // -- conversions -----------------------------------------------------------

  TypedVal coerce(TypedVal v, Ty want, int line) {
    if (v.is_array_name) fail(line, "array used as a value");
    if (v.type == want) return v;
    if (want == Ty::Void) fail(line, "cannot convert to void");
    // Fold immediates without emitting a cast.
    if (v.opnd.kind == Opnd::Kind::ImmI && want == Ty::Double) {
      v.opnd = Opnd::imm_float(static_cast<double>(v.opnd.imm_i));
      v.type = Ty::Double;
      return v;
    }
    if (v.opnd.kind == Opnd::Kind::ImmF && want == Ty::Int) {
      v.opnd = Opnd::imm_int(static_cast<std::int64_t>(v.opnd.imm_f));
      v.type = Ty::Int;
      return v;
    }
    Instr in;
    in.kind = IKind::Cast;
    in.line = line;
    in.cast = want == Ty::Double ? ir::CastKind::SiToFp : ir::CastKind::FpToSi;
    in.a = v.opnd;
    in.dst = new_reg();
    emit(std::move(in));
    TypedVal out;
    out.opnd = Opnd::make_reg(out_.instrs.back().dst);
    out.type = want;
    return out;
  }

  // -- lvalue addressing ------------------------------------------------------

  /// Computes the address for an assignment target / array element.
  /// For scalars returns a direct Var operand; for elements a Gep result reg.
  struct LValue {
    Opnd addr;  // Var (scalar) or Reg (gep result)
    Ty type = Ty::Int;
  };

  LValue gen_lvalue(const Expr& e) {
    if (e.kind == ExprKind::VarRef) {
      Binding b = resolve(e.line, e.name);
      if (b.info->is_array() || b.info->is_pointer_param) {
        fail(e.line, "cannot assign to array '" + e.name + "' without a subscript");
      }
      LValue lv;
      lv.addr = Opnd::var(b.slot, b.is_global);
      lv.type = elem_ty(*b.info);
      return lv;
    }
    if (e.kind == ExprKind::Index) {
      return gen_element_addr(e);
    }
    fail(e.line, "expression is not assignable");
  }

  LValue gen_element_addr(const Expr& e) {
    Binding b = resolve(e.line, e.name);
    const ir::VarInfo& v = *b.info;
    LValue lv;
    lv.type = elem_ty(v);

    std::vector<Opnd> indices;
    for (const auto& sub : e.args) {
      TypedVal idx = coerce(gen_expr(*sub), Ty::Int, sub->line);
      indices.push_back(idx.opnd);
    }

    Instr gep;
    gep.kind = IKind::Gep;
    gep.line = e.line;
    if (v.is_pointer_param) {
      if (indices.size() != 1) fail(e.line, "pointer parameter '" + e.name + "' takes one subscript");
      // Load the pointer value, then index through it.
      Instr ld;
      ld.kind = IKind::Load;
      ld.line = e.line;
      ld.a = Opnd::var(b.slot, b.is_global);
      ld.dst = new_reg();
      const int preg = ld.dst;
      emit(std::move(ld));
      gep.base = Opnd::make_reg(preg);
      gep.strides = {1};
    } else {
      if (!v.is_array()) fail(e.line, "subscript on non-array '" + e.name + "'");
      if (indices.size() != v.dims.size()) {
        fail(e.line, strf("'%s' needs %zu subscripts, got %zu", e.name.c_str(), v.dims.size(),
                          indices.size()));
      }
      gep.base = Opnd::var(b.slot, b.is_global);
      gep.strides.resize(indices.size());
      std::int64_t stride = 1;
      for (std::size_t i = indices.size(); i-- > 0;) {
        gep.strides[i] = stride;
        stride *= v.dims[i];
      }
    }
    gep.indices = std::move(indices);
    gep.dst = new_reg();
    const int areg = gep.dst;
    emit(std::move(gep));
    lv.addr = Opnd::make_reg(areg);
    return lv;
  }

  // -- expressions ------------------------------------------------------------

  TypedVal gen_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: {
        TypedVal v;
        v.opnd = Opnd::imm_int(e.int_val);
        v.type = Ty::Int;
        return v;
      }
      case ExprKind::FloatLit: {
        TypedVal v;
        v.opnd = Opnd::imm_float(e.float_val);
        v.type = Ty::Double;
        return v;
      }
      case ExprKind::VarRef: {
        Binding b = resolve(e.line, e.name);
        if (b.info->is_array() || b.info->is_pointer_param) {
          // Array decay: only meaningful as a call argument; gen_call handles it.
          TypedVal v;
          v.is_array_name = true;
          v.var_slot = b.slot;
          v.var_is_global = b.is_global;
          v.is_pointer_param = b.info->is_pointer_param;
          v.type = elem_ty(*b.info);
          return v;
        }
        Instr ld;
        ld.kind = IKind::Load;
        ld.line = e.line;
        ld.a = Opnd::var(b.slot, b.is_global);
        ld.dst = new_reg();
        const int reg = ld.dst;
        emit(std::move(ld));
        TypedVal v;
        v.opnd = Opnd::make_reg(reg);
        v.type = elem_ty(*b.info);
        return v;
      }
      case ExprKind::Index: {
        LValue lv = gen_element_addr(e);
        Instr ld;
        ld.kind = IKind::Load;
        ld.line = e.line;
        ld.a = lv.addr;
        ld.dst = new_reg();
        const int reg = ld.dst;
        emit(std::move(ld));
        TypedVal v;
        v.opnd = Opnd::make_reg(reg);
        v.type = lv.type;
        return v;
      }
      case ExprKind::Unary:
        return gen_unary(e);
      case ExprKind::Binary:
        return gen_binary(e);
      case ExprKind::Assign:
        return gen_assign(e);
      case ExprKind::Call:
        return gen_call(e);
    }
    fail(e.line, "internal: unhandled expression kind");
  }

  TypedVal gen_unary(const Expr& e) {
    TypedVal v = gen_expr(*e.lhs);
    if (v.is_array_name) fail(e.line, "array used as a value");
    if (e.un == UnOp::Neg) {
      Instr in;
      in.kind = IKind::Bin;
      in.line = e.line;
      in.bin = ir::BinOp::Sub;
      in.is_float = v.type == Ty::Double;
      in.a = in.is_float ? Opnd::imm_float(0.0) : Opnd::imm_int(0);
      in.b = v.opnd;
      in.dst = new_reg();
      const int reg = in.dst;
      emit(std::move(in));
      TypedVal out;
      out.opnd = Opnd::make_reg(reg);
      out.type = v.type;
      return out;
    }
    // !x  ==>  x == 0
    Instr in;
    in.kind = IKind::Bin;
    in.line = e.line;
    in.bin = ir::BinOp::CmpEQ;
    in.is_float = v.type == Ty::Double;
    in.a = v.opnd;
    in.b = in.is_float ? Opnd::imm_float(0.0) : Opnd::imm_int(0);
    in.dst = new_reg();
    const int reg = in.dst;
    emit(std::move(in));
    TypedVal out;
    out.opnd = Opnd::make_reg(reg);
    out.type = Ty::Int;
    return out;
  }

  /// Normalize a value to int 0/1 (for && / ||).
  TypedVal to_bool(TypedVal v, int line) {
    if (v.is_array_name) fail(line, "array used in a condition");
    Instr in;
    in.kind = IKind::Bin;
    in.line = line;
    in.bin = ir::BinOp::CmpNE;
    in.is_float = v.type == Ty::Double;
    in.a = v.opnd;
    in.b = in.is_float ? Opnd::imm_float(0.0) : Opnd::imm_int(0);
    in.dst = new_reg();
    const int reg = in.dst;
    emit(std::move(in));
    TypedVal out;
    out.opnd = Opnd::make_reg(reg);
    out.type = Ty::Int;
    return out;
  }

  TypedVal gen_binary(const Expr& e) {
    if (e.bin == BinaryOp::And || e.bin == BinaryOp::Or) {
      // Eager evaluation (no short-circuit), documented in docs/minic.md.
      TypedVal l = to_bool(gen_expr(*e.lhs), e.line);
      TypedVal r = to_bool(gen_expr(*e.rhs), e.line);
      Instr in;
      in.kind = IKind::Bin;
      in.line = e.line;
      in.a = l.opnd;
      in.b = r.opnd;
      in.dst = new_reg();
      const int reg = in.dst;
      if (e.bin == BinaryOp::And) {
        in.bin = ir::BinOp::Mul;  // both 0/1: a&&b == a*b
        emit(std::move(in));
        TypedVal out;
        out.opnd = Opnd::make_reg(reg);
        out.type = Ty::Int;
        return out;
      }
      in.bin = ir::BinOp::Add;  // a||b == (a+b) != 0
      emit(std::move(in));
      Instr ne;
      ne.kind = IKind::Bin;
      ne.line = e.line;
      ne.bin = ir::BinOp::CmpNE;
      ne.a = Opnd::make_reg(reg);
      ne.b = Opnd::imm_int(0);
      ne.dst = new_reg();
      const int reg2 = ne.dst;
      emit(std::move(ne));
      TypedVal out;
      out.opnd = Opnd::make_reg(reg2);
      out.type = Ty::Int;
      return out;
    }

    TypedVal l = gen_expr(*e.lhs);
    TypedVal r = gen_expr(*e.rhs);
    if (l.is_array_name || r.is_array_name) fail(e.line, "array used as a value");

    const bool is_cmp = e.bin >= BinaryOp::EQ && e.bin <= BinaryOp::GE;
    Ty operand_ty = (l.type == Ty::Double || r.type == Ty::Double) ? Ty::Double : Ty::Int;
    if (e.bin == BinaryOp::Rem) {
      if (operand_ty == Ty::Double) fail(e.line, "'%' requires integer operands");
    }
    l = coerce(l, operand_ty, e.line);
    r = coerce(r, operand_ty, e.line);

    Instr in;
    in.kind = IKind::Bin;
    in.line = e.line;
    in.is_float = operand_ty == Ty::Double;
    in.a = l.opnd;
    in.b = r.opnd;
    switch (e.bin) {
      case BinaryOp::Add: in.bin = ir::BinOp::Add; break;
      case BinaryOp::Sub: in.bin = ir::BinOp::Sub; break;
      case BinaryOp::Mul: in.bin = ir::BinOp::Mul; break;
      case BinaryOp::Div: in.bin = ir::BinOp::Div; break;
      case BinaryOp::Rem: in.bin = ir::BinOp::Rem; break;
      case BinaryOp::EQ: in.bin = ir::BinOp::CmpEQ; break;
      case BinaryOp::NE: in.bin = ir::BinOp::CmpNE; break;
      case BinaryOp::LT: in.bin = ir::BinOp::CmpLT; break;
      case BinaryOp::LE: in.bin = ir::BinOp::CmpLE; break;
      case BinaryOp::GT: in.bin = ir::BinOp::CmpGT; break;
      case BinaryOp::GE: in.bin = ir::BinOp::CmpGE; break;
      default: fail(e.line, "internal: bad binary op");
    }
    in.dst = new_reg();
    const int reg = in.dst;
    emit(std::move(in));
    TypedVal out;
    out.opnd = Opnd::make_reg(reg);
    out.type = is_cmp ? Ty::Int : operand_ty;
    return out;
  }

  TypedVal gen_assign(const Expr& e) {
    TypedVal rhs = gen_expr(*e.rhs);
    LValue lv = gen_lvalue(*e.lhs);
    rhs = coerce(rhs, lv.type, e.line);
    Instr st;
    st.kind = IKind::Store;
    st.line = e.line;
    st.a = rhs.opnd;
    st.b = lv.addr;
    emit(std::move(st));
    return rhs;  // assignments yield the stored value
  }

  TypedVal gen_call(const Expr& e) {
    const Builtin* builtin = find_builtin(e.name);
    const FuncDecl* user = nullptr;
    if (!builtin) {
      for (const auto& f : prog_.functions) {
        if (f.name == e.name) {
          user = &f;
          break;
        }
      }
      if (!user) fail(e.line, "call to undeclared function '" + e.name + "'");
    }

    const std::size_t arity = builtin ? builtin->params.size() : user->params.size();
    if (e.args.size() != arity) {
      fail(e.line, strf("'%s' expects %zu arguments, got %zu", e.name.c_str(), arity,
                        e.args.size()));
    }

    Instr call;
    call.kind = IKind::Call;
    call.line = e.line;
    call.callee = e.name;
    call.is_builtin = builtin != nullptr;

    for (std::size_t i = 0; i < e.args.size(); ++i) {
      TypedVal arg = gen_expr(*e.args[i]);
      const bool want_array = user && user->params[i].is_array;
      const Ty want_ty = builtin ? builtin->params[i]
                                 : (user->params[i].type);
      if (want_array) {
        if (!arg.is_array_name) fail(e.line, strf("argument %zu of '%s' must be an array", i + 1, e.name.c_str()));
        if (arg.type != want_ty) fail(e.line, strf("array element type mismatch in argument %zu of '%s'", i + 1, e.name.c_str()));
        if (arg.is_pointer_param) {
          // Pass a pointer parameter through: load its value.
          Instr ld;
          ld.kind = IKind::Load;
          ld.line = e.line;
          ld.a = Opnd::var(arg.var_slot, arg.var_is_global);
          ld.dst = new_reg();
          const int reg = ld.dst;
          emit(std::move(ld));
          call.args.push_back(Opnd::make_reg(reg));
        } else {
          // Array decay: &a[0] via a zero-index GEP (as clang emits).
          Instr gep;
          gep.kind = IKind::Gep;
          gep.line = e.line;
          gep.base = Opnd::var(arg.var_slot, arg.var_is_global);
          gep.indices = {Opnd::imm_int(0)};
          gep.strides = {1};
          gep.dst = new_reg();
          const int reg = gep.dst;
          emit(std::move(gep));
          call.args.push_back(Opnd::make_reg(reg));
        }
      } else {
        if (arg.is_array_name) fail(e.line, strf("argument %zu of '%s' is an array but a scalar is expected", i + 1, e.name.c_str()));
        arg = coerce(arg, want_ty, e.line);
        call.args.push_back(arg.opnd);
      }
    }

    const Ty ret = builtin ? builtin->ret : user->return_type;
    TypedVal out;
    if (ret != Ty::Void) {
      call.dst = new_reg();
      out.opnd = Opnd::make_reg(call.dst);
      out.type = ret;
    } else {
      out.type = Ty::Void;
    }
    emit(std::move(call));
    return out;
  }

  // -- statements --------------------------------------------------------------

  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Empty:
        return;
      case StmtKind::Decl:
        gen_decl(s);
        return;
      case StmtKind::ExprStmt:
        gen_expr(*s.expr);
        return;
      case StmtKind::Block: {
        scopes_.emplace_back();
        for (const auto& child : s.body) gen_stmt(*child);
        scopes_.pop_back();
        return;
      }
      case StmtKind::If:
        gen_if(s);
        return;
      case StmtKind::While:
        gen_while(s);
        return;
      case StmtKind::For:
        gen_for(s);
        return;
      case StmtKind::Return:
        gen_return(s);
        return;
      case StmtKind::Break: {
        if (break_patches_.empty()) fail(s.line, "'break' outside a loop");
        Instr jmp;
        jmp.kind = IKind::Jmp;
        jmp.line = s.line;
        jmp.t_true = -1;
        break_patches_.back().push_back(emit(std::move(jmp)));
        return;
      }
      case StmtKind::Continue: {
        if (continue_patches_.empty()) fail(s.line, "'continue' outside a loop");
        Instr jmp;
        jmp.kind = IKind::Jmp;
        jmp.line = s.line;
        jmp.t_true = -1;
        continue_patches_.back().push_back(emit(std::move(jmp)));
        return;
      }
    }
  }

  void gen_decl(const Stmt& s) {
    // Slots were assigned by collect_locals in this exact walk order.
    const int slot = find_decl_slot(s);
    if (!scopes_.back().emplace(s.name, slot).second) {
      fail(s.line, "redeclaration of '" + s.name + "' in the same scope");
    }
    if (s.init) {
      TypedVal v = gen_expr(*s.init);
      v = coerce(v, s.decl_type, s.line);
      Instr st;
      st.kind = IKind::Store;
      st.line = s.line;
      st.a = v.opnd;
      st.b = Opnd::var(slot, false);
      emit(std::move(st));
    }
  }

  /// Recover the slot assigned to this Decl during collect_locals. Decl walk
  /// order is identical, so we track a running cursor.
  int find_decl_slot(const Stmt& s) {
    if (decl_cursor_ < out_.num_params) decl_cursor_ = out_.num_params;
    const int slot = decl_cursor_++;
    const ir::VarInfo& v = out_.locals.at(static_cast<std::size_t>(slot));
    AC_CHECK(v.name == s.name, "decl slot walk order mismatch for " + s.name);
    return slot;
  }
  int decl_cursor_ = 0;

  TypedVal gen_condition(const Expr& e) {
    TypedVal v = gen_expr(e);
    if (v.is_array_name) fail(e.line, "array used in a condition");
    if (v.type == Ty::Double) v = to_bool(v, e.line);
    if (v.type == Ty::Void) fail(e.line, "void value used in a condition");
    return v;
  }

  void gen_if(const Stmt& s) {
    TypedVal cond = gen_condition(*s.expr);
    Instr br;
    br.kind = IKind::Br;
    br.line = s.expr->line;
    br.a = cond.opnd;
    br.t_true = -1;
    br.t_false = -1;
    const int br_idx = emit(std::move(br));

    out_.instrs[static_cast<std::size_t>(br_idx)].t_true = here();
    gen_stmt(*s.then_branch);
    if (s.else_branch) {
      Instr skip;
      skip.kind = IKind::Jmp;
      skip.line = s.line;
      skip.t_true = -1;
      const int skip_idx = emit(std::move(skip));
      out_.instrs[static_cast<std::size_t>(br_idx)].t_false = here();
      gen_stmt(*s.else_branch);
      out_.instrs[static_cast<std::size_t>(skip_idx)].t_true = here();
    } else {
      out_.instrs[static_cast<std::size_t>(br_idx)].t_false = here();
    }
  }

  void gen_while(const Stmt& s) {
    const int header = here();
    TypedVal cond = gen_condition(*s.expr);
    Instr br;
    br.kind = IKind::Br;
    br.line = s.expr->line;
    br.a = cond.opnd;
    br.t_true = -1;
    br.t_false = -1;
    const int br_idx = emit(std::move(br));
    out_.instrs[static_cast<std::size_t>(br_idx)].t_true = here();

    break_patches_.emplace_back();
    continue_patches_.emplace_back();
    gen_stmt(*s.loop_body);

    Instr back;
    back.kind = IKind::Jmp;
    back.line = s.line;
    back.t_true = header;
    emit(std::move(back));

    const int exit = here();
    out_.instrs[static_cast<std::size_t>(br_idx)].t_false = exit;
    for (int idx : break_patches_.back()) out_.instrs[static_cast<std::size_t>(idx)].t_true = exit;
    for (int idx : continue_patches_.back()) out_.instrs[static_cast<std::size_t>(idx)].t_true = header;
    break_patches_.pop_back();
    continue_patches_.pop_back();
  }

  void gen_for(const Stmt& s) {
    scopes_.emplace_back();  // for-init declarations scope to the loop
    if (s.for_init) gen_stmt(*s.for_init);

    const int header = here();
    int br_idx = -1;
    if (s.expr) {
      TypedVal cond = gen_condition(*s.expr);
      Instr br;
      br.kind = IKind::Br;
      br.line = s.expr->line;
      br.a = cond.opnd;
      br.t_true = -1;
      br.t_false = -1;
      br_idx = emit(std::move(br));
      out_.instrs[static_cast<std::size_t>(br_idx)].t_true = here();
    }

    break_patches_.emplace_back();
    continue_patches_.emplace_back();
    gen_stmt(*s.loop_body);

    const int step_at = here();
    if (s.for_step) gen_expr(*s.for_step);
    Instr back;
    back.kind = IKind::Jmp;
    back.line = s.line;
    back.t_true = header;
    emit(std::move(back));

    const int exit = here();
    if (br_idx >= 0) out_.instrs[static_cast<std::size_t>(br_idx)].t_false = exit;
    for (int idx : break_patches_.back()) out_.instrs[static_cast<std::size_t>(idx)].t_true = exit;
    for (int idx : continue_patches_.back()) out_.instrs[static_cast<std::size_t>(idx)].t_true = step_at;
    break_patches_.pop_back();
    continue_patches_.pop_back();
    scopes_.pop_back();
  }

  void gen_return(const Stmt& s) {
    Instr ret;
    ret.kind = IKind::Ret;
    ret.line = s.line;
    if (fn_.return_type == Ty::Void) {
      if (s.expr) fail(s.line, "void function returning a value");
    } else {
      if (!s.expr) fail(s.line, "non-void function must return a value");
      TypedVal v = coerce(gen_expr(*s.expr), fn_.return_type, s.line);
      ret.a = v.opnd;
    }
    emit(std::move(ret));
  }
};

}  // namespace

ir::Module codegen(const Program& prog) {
  ir::Module mod;
  std::map<std::string, int> global_slots;
  for (const auto& g : prog.globals) {
    if (find_builtin(g.name)) throw CompileError(strf("line %d: global '%s' shadows a builtin", g.line, g.name.c_str()));
    ir::VarInfo v;
    v.name = g.name;
    v.elem = to_elem(g.type);
    v.dims.assign(g.dims.begin(), g.dims.end());
    v.decl_line = g.line;
    if (!global_slots.emplace(g.name, static_cast<int>(mod.globals.size())).second) {
      throw CompileError(strf("line %d: duplicate global '%s'", g.line, g.name.c_str()));
    }
    mod.globals.push_back(v);
  }

  for (const auto& f : prog.functions) {
    if (find_builtin(f.name)) {
      throw CompileError(strf("line %d: function '%s' shadows a builtin", f.line, f.name.c_str()));
    }
    if (mod.function_index.count(f.name)) {
      throw CompileError(strf("line %d: duplicate function '%s'", f.line, f.name.c_str()));
    }
    mod.function_index.emplace(f.name, static_cast<int>(mod.functions.size()));
    mod.functions.emplace_back();  // reserve index so order matches prog.functions
  }
  for (std::size_t i = 0; i < prog.functions.size(); ++i) {
    FuncCodegen cg(prog, prog.functions[i], mod, global_slots);
    mod.functions[i] = cg.run();
  }
  if (!mod.find_function("main")) throw CompileError("program has no main function");
  return mod;
}

}  // namespace ac::minic
