// Compiler facade: MiniC source text -> verified mini-IR module.
#pragma once

#include <string>

#include "ir/ir.hpp"

namespace ac::minic {

/// Lex + parse + lower + verify. Throws ac::CompileError (diagnostics) or
/// ac::Error (verifier findings, which indicate frontend bugs).
ir::Module compile(const std::string& source);

}  // namespace ac::minic
